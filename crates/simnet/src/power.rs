//! Finite energy on a shard: battery drain projection and node death.
//!
//! Dying is a two-phase affair in the sharded world. The *kill* —
//! silencing the radios, freezing the ledgers, cancelling the corpse's
//! timers — is entirely local to the owning shard and happens at the
//! exact depletion instant. The *announcement* — route repair, shortcut
//! invalidation, the shared liveness snapshot — is a [`GlobalEv::NodeDied`]
//! that reaches the coordinator one link latency later, exactly like any
//! other cross-node signal, so it can never land inside the conservative
//! window that produced it. Survivors therefore route around a corpse
//! one link latency after the battery empties, identically for every
//! shard count.

use crate::events::{Ev, GlobalEv};
use crate::shard::{ShardCtx, ShardState};
use bcp_net::addr::NodeId;
use bcp_power::BatteryModel;
use bcp_sim::trace::TraceEvent;

impl ShardState {
    /// Syncs `node`'s battery against its energy meters and (re)schedules
    /// the projected depletion instant. Call after anything that changes a
    /// radio's power draw; no-op for mains-powered or already-dead nodes.
    ///
    /// Radio draw is piecewise constant between events, so the projection
    /// is exact: the node dies *at* the scheduled `PowerCheck`, not within
    /// some polling window, and death times are seed-reproducible.
    pub(crate) fn power_touch(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let now = ctx.now();
        let (metered, draw) = {
            let n = self.node(node);
            if n.supply.is_none() || !n.is_alive() {
                return;
            }
            (n.metered_total(now), n.current_draw())
        };
        let (depleted, remaining_j) = {
            let supply = self.node_mut(node).supply.as_mut().expect("checked above");
            supply.sync_to(metered);
            (
                supply.is_depleted_at(draw),
                supply.battery().remaining().as_joules(),
            )
        };
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::PowerStep {
            node: node.0,
            remaining_j,
        });
        if depleted {
            self.kill_node(ctx, node);
            return;
        }
        let supply = self.node(node).supply.as_ref().expect("checked above");
        match supply.time_to_depletion(draw) {
            Some(d) => {
                let id = ctx.after(d, Ev::PowerCheck { node });
                if let Some(old) = self.power_timers.insert(node.0, id) {
                    ctx.cancel(old);
                }
            }
            None => {
                if let Some(old) = self.power_timers.remove(&node.0) {
                    ctx.cancel(old);
                }
            }
        }
    }

    /// The battery emptied: cut power, silence the corpse, and let the
    /// survivors know — one link latency later — via
    /// [`GlobalEv::NodeDied`].
    fn kill_node(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let now = ctx.now();
        {
            let n = self.node_mut(node);
            debug_assert!(n.is_alive(), "{node} died twice");
            // Close the meters at the instant of death, then cut power so
            // the ledgers freeze (a dead node's ledger stops accumulating).
            let metered = n.metered_total(now);
            if let Some(s) = n.supply.as_mut() {
                s.sync_to(metered);
            }
            n.low_radio.force_off(now);
            if let Some(hr) = n.high_radio.as_mut() {
                hr.force_off(now);
            }
            n.died_at = Some(now);
        }
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::NodeDeath { node: node.0 });
        // Stale events are alive-guarded anyway; cancelling keeps the
        // queue small.
        let mut cancelled = Vec::new();
        self.mac_timers.retain(|k, id| {
            let stale = k.0 == node.0;
            if stale {
                cancelled.push(*id);
            }
            !stale
        });
        self.ack_timers.retain(|k, id| {
            let stale = k.0 == node.0;
            if stale {
                cancelled.push(*id);
            }
            !stale
        });
        self.data_timers.retain(|k, id| {
            let stale = k.0 == node.0;
            if stale {
                cancelled.push(*id);
            }
            !stale
        });
        if let Some(id) = self.linger.remove(&node.0) {
            cancelled.push(id);
        }
        if let Some(id) = self.power_timers.remove(&node.0) {
            cancelled.push(id);
        }
        // The LPL wake-sample chain dies with the node (its doze draw is
        // gone too: force_off already cut the radio to zero power).
        if let Some(id) = self.lpl_timers.remove(&node.0) {
            cancelled.push(id);
        }
        self.lpl_audible.remove(&node.0);
        for id in cancelled {
            ctx.cancel(id);
        }
        ctx.global(
            now + self.death_latency,
            GlobalEv::NodeDied { node, at: now },
        );
    }
}
