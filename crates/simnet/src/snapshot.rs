//! Exact world checkpointing: capture a paused simulation as a plain
//! data structure, restore it later — under any shard count — and
//! continue bit-identically.
//!
//! # The exactness contract
//!
//! A [`WorldState`] captured by [`LiveWorld::snapshot`] at pause time `t`
//! holds *everything* the remainder of the run depends on: the canonical
//! pending-event set (with exact tie-breaking keys), every node's MAC /
//! radio / BCP / workload / battery registers, the per-node channel and
//! loss-RNG state, routes and liveness as last published, the metric
//! counters and per-copy packet fates, and the series sampler's grid
//! position. Restoring and running to the horizon produces the same
//! [`RunStats`](crate::metrics::RunStats) — bit for bit, excluding only
//! the wall-clock `.engine` block — as the uninterrupted run.
//!
//! Because everything in a `WorldState` is indexed by *global node id*
//! and event identities are shard-count independent by construction, the
//! snapshot is also canonical across shard counts: a world paused under
//! one shard count captures the same `WorldState` (modulo the
//! `scen.shards` field) as the same world paused under another, and a
//! snapshot taken under 1 shard restores into 4 (or vice versa) without
//! loss.
//!
//! On top of the capture/restore pair sit two tools:
//!
//! * [`fork_with_power`] — brand a warm unpowered prefix with a battery
//!   configuration, so a lifetime sweep runs the shared prefix once and
//!   branches per grid cell.
//! * [`explore`] — a bounded model checker that exhaustively re-executes
//!   every admissible same-timestamp event ordering from a snapshot on a
//!   single-shard stepper, checking liveness/energy invariants in each
//!   interleaving.

use crate::channel::Channel;
use crate::events::{Class, Ev, GlobalEv, Payload, TxId};
use crate::metrics::Metrics;
use crate::node::NodeState;
use crate::routes::{Control, SeriesState, SharedNet};
use crate::scenario::{HighRoute, Scenario};
use crate::shard::ShardState;
use crate::world::{merge_mark, LiveWorld, RunOptions, Scaffold};
use bcp_core::receiver::{BcpReceiver, ReceiverSnapshot};
use bcp_core::sender::{BcpSender, SenderSnapshot};
use bcp_mac::csma::{CsmaMac, MacConfig, MacSnapshot};
use bcp_mac::types::{FrameKind, MacAddr};
use bcp_net::addr::{AddrMap, HighAddr, LowAddr, NodeId};
use bcp_net::loss::LossState;
use bcp_net::routing::{Dissemination, RouteWeight, Routes, ShortcutTable};
use bcp_power::{BatteryModel, PowerConfig, PowerSupply};
use bcp_radio::device::{Radio, RadioState};
use bcp_radio::energy::{EnergyBucket, EnergyLedger};
use bcp_radio::profile::RadioProfile;
use bcp_radio::units::{Energy, Power};
use bcp_sim::conservative::{EngineCounters, SingleStepper};
use bcp_sim::keyed::{EvKey, Keyed, ShardQueue};
use bcp_sim::time::{SimDuration, SimTime};
use bcp_sim::trace::TraceRecord;
use bcp_traffic::Workload;
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::routes::Cumulative;
pub use crate::shard::{ActiveTx, Fate, FateKey, FateMark};

// ---------------------------------------------------------------------
// The captured state
// ---------------------------------------------------------------------

/// One radio's captured registers: the power state plus the energy
/// ledger's raw accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioSnapshot {
    /// The radio's power state at the pause.
    pub state: RadioState,
    /// The ledger's per-bucket accumulated energy.
    pub buckets: [Energy; 7],
    /// When the ledger's open bucket started accumulating.
    pub since: SimTime,
    /// The draw of the open bucket.
    pub power: Power,
    /// Which bucket is open.
    pub bucket: EnergyBucket,
}

/// One node's slice of one radio class's medium: carrier count,
/// reception lock, loss-process state, and the node-local loss RNG
/// stream. The loss *model* is configuration and lives in the
/// scenario; only its per-node runtime state is captured here.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSlot {
    /// Audible foreign transmissions at the pause.
    pub carrier: u32,
    /// The frame the receiver is locked onto, with its corruption flag.
    pub rx_current: Option<(TxId, bool)>,
    /// The loss process's per-node runtime state.
    pub loss: LossState,
    /// The raw xoshiro state of the node's loss stream.
    pub rng: [u64; 4],
    /// Audible transmissions with their received powers (mW), in
    /// arrival order. Empty under the disk model, which tracks only
    /// the carrier count.
    pub audible: Vec<(TxId, f64)>,
}

/// One node's complete captured state, indexed by global node id.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Low-radio MAC registers.
    pub low_mac: MacSnapshot,
    /// Low radio power state and ledger.
    pub low_radio: RadioSnapshot,
    /// High-radio MAC registers (models with a high radio only).
    pub high_mac: Option<MacSnapshot>,
    /// High radio power state and ledger.
    pub high_radio: Option<RadioSnapshot>,
    /// BCP sender machine (dual-radio model only).
    pub bcp_tx: Option<SenderSnapshot>,
    /// BCP receiver machine (dual-radio model only).
    pub bcp_rx: Option<ReceiverSnapshot>,
    /// The traffic source, cloned whole (it is plain state + an RNG).
    pub workload: Option<Workload>,
    /// Bytes of the due-but-unqueued arrival (see `Ev::AppArrival`).
    pub pending_bytes: usize,
    /// Application packet sequence counter.
    pub app_seq: u64,
    /// Transmission id sequence counter.
    pub tx_seq: u64,
    /// Payload tag sequence counter.
    pub tag_seq: u64,
    /// High-radio power votes held.
    pub high_refs: u32,
    /// Bursts waiting for the high radio to finish powering up.
    pub wake_pending: Vec<bcp_core::msg::BurstId>,
    /// Accumulated header-overhear energy attribution.
    pub header_overhear: Energy,
    /// Learned high-radio shortcut table.
    pub shortcuts: ShortcutTable,
    /// Promiscuous-listen deadline for shortcut learning.
    pub listen_until: SimTime,
    /// Battery registers `(drawn, synced)`; `None` on mains power.
    pub supply: Option<(Energy, Energy)>,
    /// When the node died, if it did.
    pub died_at: Option<SimTime>,
    /// The node's medium slots, low class then high class.
    pub channels: [ChannelSlot; 2],
}

/// The series sampler's captured grid position. The emitted samples are
/// *not* captured — they were already delivered to whoever ran the first
/// segment — only the baseline needed to continue the delta stream
/// without re-emitting or skewing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The sampling interval.
    pub every: SimDuration,
    /// The next sample instant not yet emitted.
    pub next: SimTime,
    /// The last instant actually emitted, if any.
    pub last: Option<SimTime>,
    /// Cumulative totals at the last emitted sample — the baseline the
    /// next delta subtracts from.
    pub prev: Cumulative,
}

/// The received-power layer's captured randomness: the per-link
/// shadowing offsets for both radio classes and the shadow stream's
/// post-draw RNG state. Present exactly when the scenario runs under
/// `phys = logn`; the offsets are re-derivable from the scenario seed,
/// but capturing them keeps the snapshot self-describing and lets the
/// restore cross-check the rebuilt world against the captured one.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowSnapshot {
    /// Per-unordered-pair shadowing offsets (dB) for the low class, in
    /// canonical (0,1),(0,2),… order.
    pub low: Vec<f64>,
    /// Per-unordered-pair shadowing offsets (dB) for the high class.
    pub high: Vec<f64>,
    /// The shadow stream's raw xoshiro state after both draws.
    pub rng: [u64; 4],
}

/// A complete, paused simulation as plain data: the capture side of
/// exact checkpointing. Everything is keyed by global node id or by
/// shard-count-independent event identity, so the same `WorldState`
/// restores under any shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldState {
    /// The scenario, embedded whole so a snapshot is self-describing
    /// (its `shards` field picks the partition a restore rebuilds).
    pub scen: Scenario,
    /// The pause instant: every event strictly before it has run.
    pub time: SimTime,
    /// Logical events handled so far (shard-count-invariant count).
    pub events_logical: u64,
    /// Global (coordinator) events executed so far.
    pub global_events: u64,
    /// Every node's state, in node-id order, one entry per node.
    pub nodes: Vec<NodeSnapshot>,
    /// The canonical pending shard events, sorted by key, with the
    /// per-shard halves of each reception fan-out merged back into one
    /// entry (the restore re-fans them out under the new partition).
    pub pending: Vec<(EvKey, Ev)>,
    /// Pending coordinator events, sorted by key.
    pub pending_globals: Vec<(EvKey, GlobalEv)>,
    /// In-flight payloads by tag, sorted (tags embed the sender's id).
    pub payloads: Vec<(u64, Payload)>,
    /// Transmissions on the air by id, sorted.
    pub txs: Vec<(u64, ActiveTx)>,
    /// LPL-audible transmissions per duty-cycled node, sorted by node.
    pub lpl_audible: Vec<(u32, Vec<(TxId, SimTime)>)>,
    /// Per-copy packet fates, reconciled across shards and sorted.
    pub fates: Vec<(FateKey, FateMark)>,
    /// Collisions observed so far (whole-run cumulative total).
    pub collisions: u64,
    /// The merged metric counters (global slice + every shard's).
    pub metrics: Metrics,
    /// Low-radio routes as last published.
    pub low_routes: Routes,
    /// High-radio routes as last published.
    pub high_routes: Routes,
    /// Per-node liveness as last published.
    pub alive: Vec<bool>,
    /// Whether a death has been announced.
    pub death_seen: bool,
    /// The dissemination tree (broadcast scenarios only).
    pub dissem: Option<Dissemination>,
    /// The series sampler's grid position, when a series was recording.
    pub series: Option<SeriesSnapshot>,
    /// Per-link shadowing offsets and the shadow RNG stream, when the
    /// scenario runs under a received-power model.
    pub shadow: Option<ShadowSnapshot>,
}

impl WorldState {
    /// `self` with the scenario's shard count replaced — the way to
    /// restore a checkpoint under a different partition than it was
    /// taken under.
    pub fn with_shards(&self, shards: usize) -> WorldState {
        let mut out = self.clone();
        out.scen.shards = shards;
        out
    }
}

// ---------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------

/// Captures `lw` at its current pause. See the module docs for the
/// exactness contract.
pub(crate) fn capture(lw: &LiveWorld) -> WorldState {
    let scaf = &lw.scaf;
    let n = scaf.scen.topo.len();

    // Canonical pending set: union the shard queues (each sorted by
    // key), sort globally, then merge the per-shard halves of each
    // reception fan-out back into one entry. The RxEnd twins differ only
    // in which shard was handed the payload; keep the copy that has it.
    let mut pending: Vec<(EvKey, Ev)> = lw
        .shards
        .iter()
        .flat_map(|(_, q)| {
            q.live_entries()
                .into_iter()
                .map(|(k, e)| (k, e.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    pending.sort_by_key(|e| e.0);
    pending.dedup_by(|a, b| {
        if a.0 != b.0 {
            return false;
        }
        match (&mut b.1, &mut a.1) {
            (Ev::RxEnd { payload: pb, .. }, Ev::RxEnd { payload: pa, .. }) => {
                if pb.is_none() {
                    *pb = pa.take();
                }
                true
            }
            (x, y) => x == y,
        }
    });

    let pending_globals: Vec<(EvKey, GlobalEv)> = lw
        .gqueue
        .live_entries()
        .into_iter()
        .map(|(k, e)| (k, e.clone()))
        .collect();

    let nodes: Vec<NodeSnapshot> = (0..n)
        .map(|i| {
            let id = NodeId(i as u32);
            let shard = &lw.shards[scaf.part.shard_of(id)].0;
            let node = shard.nodes[i].as_ref().expect("owner has the node");
            capture_node(node, shard)
        })
        .collect();

    // Shard-table unions. Keys are disjoint across shards (each entry
    // lives at exactly one owner) except the fates, which reconcile
    // through the same semilattice the finaliser uses.
    let mut payloads: Vec<(u64, Payload)> = Vec::new();
    let mut txs: Vec<(u64, ActiveTx)> = Vec::new();
    let mut lpl_audible: Vec<(u32, Vec<(TxId, SimTime)>)> = Vec::new();
    let mut fates_map: HashMap<FateKey, FateMark> = HashMap::new();
    for (s, _) in &lw.shards {
        payloads.extend(s.payloads.iter().map(|(&k, v)| (k, v.clone())));
        txs.extend(s.txs.iter().map(|(&k, v)| (k, v.clone())));
        lpl_audible.extend(s.lpl_audible.iter().map(|(&k, v)| (k, v.clone())));
        for (&k, &m) in &s.fates {
            merge_mark(&mut fates_map, k, m);
        }
    }
    payloads.sort_by_key(|e| e.0);
    txs.sort_by_key(|e| e.0);
    lpl_audible.sort_by_key(|e| e.0);
    let mut fates: Vec<(FateKey, FateMark)> = fates_map.into_iter().collect();
    fates.sort_by_key(|e| e.0);

    let mut metrics = lw.control.metrics.clone();
    for (s, _) in &lw.shards {
        metrics.merge(&s.metrics);
    }

    let shared = &lw.shards[0].0.shared;
    WorldState {
        scen: (*scaf.scen).clone(),
        time: lw.now,
        events_logical: lw.shards.iter().map(|(s, _)| s.events_logical).sum(),
        global_events: lw.control.global_events,
        nodes,
        pending,
        pending_globals,
        payloads,
        txs,
        lpl_audible,
        fates,
        collisions: lw
            .shards
            .iter()
            .map(|(s, _)| s.chans[0].collisions() + s.chans[1].collisions())
            .sum(),
        metrics,
        low_routes: shared.low_routes.clone(),
        high_routes: shared.high_routes.clone(),
        alive: shared.alive.clone(),
        death_seen: shared.death_seen,
        dissem: shared.dissem.clone(),
        series: lw.control.series.as_ref().map(|st| SeriesSnapshot {
            every: st.every,
            next: st.next,
            last: st.last,
            prev: st.prev,
        }),
        shadow: match (&scaf.phys[0], &scaf.phys[1]) {
            (Some(low), Some(high)) => Some(ShadowSnapshot {
                low: low.shadow.offsets().to_vec(),
                high: high.shadow.offsets().to_vec(),
                rng: scaf
                    .shadow_rng_state
                    .expect("received-power scaffold records its shadow stream"),
            }),
            _ => None,
        },
    }
}

fn capture_radio(r: &Radio) -> RadioSnapshot {
    let (buckets, since, power, bucket) = r.ledger().raw_parts();
    RadioSnapshot {
        state: r.state(),
        buckets,
        since,
        power,
        bucket,
    }
}

fn capture_slot(c: &Channel, id: NodeId) -> ChannelSlot {
    let (carrier, rx_current, loss, rng) = c.node_state(id);
    ChannelSlot {
        carrier,
        rx_current,
        loss,
        rng,
        audible: c.audible_of(id).to_vec(),
    }
}

fn capture_node(n: &NodeState, shard: &ShardState) -> NodeSnapshot {
    NodeSnapshot {
        id: n.id,
        low_mac: n.low_mac.snapshot_state(),
        low_radio: capture_radio(&n.low_radio),
        high_mac: n.high_mac.as_ref().map(CsmaMac::snapshot_state),
        high_radio: n.high_radio.as_ref().map(capture_radio),
        bcp_tx: n.bcp_tx.as_ref().map(BcpSender::snapshot_state),
        bcp_rx: n.bcp_rx.as_ref().map(BcpReceiver::snapshot_state),
        workload: n.workload.clone(),
        pending_bytes: n.pending_bytes,
        app_seq: n.app_seq,
        tx_seq: n.tx_seq,
        tag_seq: n.tag_seq,
        high_refs: n.high_refs,
        wake_pending: n.wake_pending.clone(),
        header_overhear: n.header_overhear,
        shortcuts: n.shortcuts.clone(),
        listen_until: n.listen_until,
        supply: n.supply.as_ref().map(|s| (s.battery().drawn(), s.synced())),
        died_at: n.died_at,
        channels: [
            capture_slot(&shard.chans[0], n.id),
            capture_slot(&shard.chans[1], n.id),
        ],
    }
}

// ---------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------

/// Rebuilds a paused [`LiveWorld`] from a snapshot, under the partition
/// `state.scen.shards` asks for. The restored world continues
/// bit-identically to the world the snapshot was taken from.
///
/// `opts` controls the *remaining* segment's observability: tracing and
/// series emission restart here (covering the post-restore segment), the
/// pre-checkpoint artefacts having been produced by the original run.
/// When the snapshot was recording a series, the captured interval and
/// grid position win over `opts.series_every`'s interval so the sample
/// grid continues instead of restarting.
pub(crate) fn restore(state: &WorldState, opts: &RunOptions) -> LiveWorld {
    let mut scaf = Scaffold::new(&state.scen, opts);
    // Per-link shadowing is part of the world's identity: reinstall the
    // captured offsets before any shard is built so every decode after
    // the resume sees the exact link gains the first segment saw.
    if let Some(sh) = &state.shadow {
        scaf.restore_shadow(0, &sh.low);
        scaf.restore_shadow(1, &sh.high);
    }
    let scaf = scaf;
    let scen = Arc::clone(&scaf.scen);
    let part = Arc::clone(&scaf.part);
    let n = scen.topo.len();
    let k = part.k();
    let t = state.time;
    assert_eq!(
        state.nodes.len(),
        n,
        "snapshot and scenario disagree on node count"
    );
    assert!(
        t <= scaf.end,
        "snapshot pause {t} is past the horizon {}",
        scaf.end
    );

    let shared = Arc::new(SharedNet {
        low_routes: state.low_routes.clone(),
        high_routes: state.high_routes.clone(),
        alive: state.alive.clone(),
        death_seen: state.death_seen,
        dissem: state.dissem.clone(),
    });

    // Channel slots start from placeholder seeds; every owned slot is
    // then overwritten with the captured loss/RNG registers, and only
    // owned slots are ever read.
    let placeholder_seeds = vec![1u64; n];
    let mut shards: Vec<(ShardState, ShardQueue<Ev>)> = (0..k)
        .map(|id| {
            (
                scaf.blank_shard(
                    id,
                    &placeholder_seeds,
                    &placeholder_seeds,
                    &shared,
                    opts.trace,
                ),
                ShardQueue::new(),
            )
        })
        .collect();

    for snap in &state.nodes {
        let (s, _) = &mut shards[part.shard_of(snap.id)];
        for (ci, slot) in snap.channels.iter().enumerate() {
            s.chans[ci].restore_node_state(
                snap.id,
                slot.carrier,
                slot.rx_current,
                slot.loss,
                slot.rng,
                slot.audible.clone(),
            );
        }
        s.nodes[snap.id.index()] = Some(restore_node(&scen, &scaf.addr, snap));
    }

    // Whole-run cumulative scalars land on shard 0: the finaliser sums
    // across shards, so placement is arbitrary but must not double-count.
    shards[0].0.events_logical = state.events_logical;
    shards[0].0.chans[0].restore_collisions(state.collisions);

    for (tag, p) in &state.payloads {
        let owner = part.shard_of(NodeId((tag >> 40) as u32));
        shards[owner].0.payloads.insert(*tag, p.clone());
    }
    for (id, tx) in &state.txs {
        let owner = part.shard_of(tx.sender);
        shards[owner].0.txs.insert(*id, tx.clone());
    }
    for (node, v) in &state.lpl_audible {
        let owner = part.shard_of(NodeId(*node));
        shards[owner].0.lpl_audible.insert(*node, v.clone());
    }
    for (key, mark) in &state.fates {
        let owner = part.shard_of(NodeId(key.1));
        shards[owner].0.fates.insert(*key, *mark);
    }

    // Metrics: the death slice is coordinator-owned; each flow lives at
    // its destination's owner (where deliveries update it — a source-side
    // update merges in at finalisation exactly as it would have); every
    // other scalar is cumulative and goes to shard 0.
    let ctrl_metrics = Metrics {
        node_deaths: state.metrics.node_deaths,
        first_death: state.metrics.first_death,
        partition: state.metrics.partition,
        ..Metrics::default()
    };
    let mut shard0 = state.metrics.clone();
    shard0.node_deaths = 0;
    shard0.first_death = None;
    shard0.partition = None;
    shard0.flows.clear();
    shards[0].0.metrics = shard0;
    for (&flow, fs) in &state.metrics.flows {
        let owner = part.shard_of(flow.1);
        shards[owner].0.metrics.flows.insert(flow, fs.clone());
    }

    // Re-schedule the canonical pending set in key order, fanning the
    // reception events back out across the (possibly different)
    // partition and re-registering every cancellable timer.
    for (key, ev) in &state.pending {
        match ev {
            Ev::RxBegin { sender, class, .. } => {
                let ci = class.index();
                for sh in hearing_shards(&scaf, ci, *sender) {
                    let (s, q) = &mut shards[sh];
                    schedule_restored(s, q, *key, ev.clone());
                }
            }
            Ev::RxEnd {
                sender,
                class,
                frame,
                payload,
                ..
            } => {
                // Re-derive the per-shard payload under the NEW partition
                // with the same rule the sender's tx_end handler used.
                let ci = class.index();
                let dst_node = (frame.kind == FrameKind::Data && !frame.dst.is_broadcast())
                    .then(|| node_of_mac(&scaf.addr, frame.dst, *class))
                    .flatten();
                let learning = *class == Class::High
                    && matches!(
                        scen.high_route,
                        HighRoute::LowParents {
                            shortcuts: true,
                            ..
                        }
                    );
                for sh in hearing_shards(&scaf, ci, *sender) {
                    let p = if frame.kind == FrameKind::Data {
                        let needed = frame.dst.is_broadcast()
                            || learning
                            || dst_node.is_some_and(|d| part.shard_of(d) == sh);
                        if needed {
                            payload.clone()
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    let mut e = ev.clone();
                    if let Ev::RxEnd { payload, .. } = &mut e {
                        *payload = p;
                    }
                    let (s, q) = &mut shards[sh];
                    schedule_restored(s, q, *key, e);
                }
            }
            _ => {
                let node = target_node(ev).expect("every other event is node-addressed");
                let (s, q) = &mut shards[part.shard_of(node)];
                schedule_restored(s, q, *key, ev.clone());
            }
        }
    }

    let mut gqueue: ShardQueue<GlobalEv> = ShardQueue::new();
    for (key, g) in &state.pending_globals {
        gqueue.schedule_with_key(*key, g.clone());
    }
    // Clocks last: scheduling asserts keys are not in the past, and the
    // restore asserts no pending event precedes the pause.
    gqueue.restore_clock_state(t, 0, 0, 0);
    for (_, q) in &mut shards {
        q.restore_clock_state(t, 0, 0, 0);
    }

    let (series_every, series) = match (opts.series_every, &state.series) {
        (Some(_), Some(sn)) => {
            // Continue the captured grid: same interval, same next
            // instant, same delta baseline — and an empty sample buffer,
            // so nothing pre-checkpoint is re-emitted.
            let mut st = SeriesState::new(sn.every);
            st.next = sn.next;
            st.last = sn.last;
            st.prev = sn.prev;
            (Some(sn.every), Some(st))
        }
        (Some(every), None) => {
            // Series switched on only at resume: start a fresh grid at
            // the first instant past the pause (earlier instants belong
            // to the segment that already ran).
            let mut st = SeriesState::new(every);
            while st.next <= t {
                st.next += every;
            }
            (Some(every), Some(st))
        }
        (None, _) => (None, None),
    };

    let control = Control {
        scen: Arc::clone(&scen),
        gossip_flows: match scen.pattern {
            bcp_traffic::TrafficPattern::Gossip { .. } => scen.flows(),
            _ => Vec::new(),
        },
        metrics: ctrl_metrics,
        global_events: state.global_events,
        trace: opts.trace.then(Vec::<TraceRecord>::new),
        series,
    };

    LiveWorld {
        series_every,
        scaf,
        shards,
        gqueue,
        control,
        counters: EngineCounters::default(),
        now: t,
    }
}

/// Shards owning at least one neighbour of `sender` (collected so the
/// borrow of the scaffold does not overlap the shard mutations).
fn hearing_shards(scaf: &Scaffold, ci: usize, sender: NodeId) -> Vec<usize> {
    scaf.neigh[ci].shards_hearing(sender).collect()
}

fn node_of_mac(addr: &AddrMap, mac: MacAddr, class: Class) -> Option<NodeId> {
    match class {
        Class::Low => addr.node_of_low(LowAddr(mac.0 as u16)),
        Class::High => addr.node_of_high(HighAddr(mac.0)),
    }
}

/// The owner of a node-addressed event (`None` for the reception
/// fan-outs, which address shards).
fn target_node(ev: &Ev) -> Option<NodeId> {
    match *ev {
        Ev::AppArrival { node }
        | Ev::MacTimer { node, .. }
        | Ev::RadioWakeDone { node }
        | Ev::BcpAckTimer { node, .. }
        | Ev::BcpDataTimer { node, .. }
        | Ev::HighIdleOff { node }
        | Ev::Flush { node }
        | Ev::PowerCheck { node }
        | Ev::WakeSample { node }
        | Ev::Sleep { node } => Some(node),
        Ev::TxEnd { tx } => Some(tx.sender()),
        Ev::RxBegin { .. } | Ev::RxEnd { .. } => None,
    }
}

/// Schedules a restored event under its exact original key and
/// re-registers it in the owning shard's cancellation table (the live
/// world tracks at most one pending timer per table key, so a plain
/// insert reproduces the tracked id).
fn schedule_restored(s: &mut ShardState, q: &mut ShardQueue<Ev>, key: EvKey, ev: Ev) {
    let id = q.schedule_with_key(key, ev.clone());
    match ev {
        Ev::MacTimer { node, class, kind } => {
            s.mac_timers.insert((node.0, class.index(), kind), id);
        }
        Ev::BcpAckTimer { node, burst } => {
            s.ack_timers.insert((node.0, burst.0), id);
        }
        Ev::BcpDataTimer { node, burst } => {
            s.data_timers.insert((node.0, burst.0), id);
        }
        Ev::HighIdleOff { node } => {
            s.linger.insert(node.0, id);
        }
        Ev::PowerCheck { node } => {
            s.power_timers.insert(node.0, id);
        }
        Ev::WakeSample { node } => {
            s.lpl_timers.insert(node.0, id);
        }
        _ => {}
    }
}

fn restore_radio(profile: &RadioProfile, s: &RadioSnapshot) -> Radio {
    let mut r = Radio::new(profile.clone(), RadioState::Idle, SimTime::ZERO);
    r.restore_state(
        s.state,
        EnergyLedger::from_raw_parts(s.buckets, s.since, s.power, s.bucket),
    );
    r
}

fn restore_node(scen: &Scenario, addr: &AddrMap, snap: &NodeSnapshot) -> NodeState {
    let id = snap.id;
    let mut low_mac = CsmaMac::new(
        MacConfig::sensor_csma(&scen.low_profile)
            .with_wakeup_preamble(scen.low_sleep.tx_preamble()),
        MacAddr(addr.low_of(id).0 as u64),
        1, // placeholder seed; restore_state overwrites the stream
    );
    low_mac.restore_state(&snap.low_mac);
    let high_mac = snap.high_mac.as_ref().map(|m| {
        let mut mac = CsmaMac::new(
            MacConfig::dot11b(&scen.high_profile),
            MacAddr(addr.high_of(id).0),
            1,
        );
        mac.restore_state(m);
        mac
    });
    let bcp_tx = snap.bcp_tx.as_ref().map(|t| {
        let mut tx = BcpSender::new(id, scen.bcp.clone());
        tx.restore_state(t);
        tx
    });
    let bcp_rx = snap.bcp_rx.as_ref().map(|r| {
        let mut rx = BcpReceiver::new(id, scen.bcp.clone());
        rx.restore_state(r);
        rx
    });
    let battery = scen.power.battery_for(id.index(), id == scen.sink);
    assert_eq!(
        snap.supply.is_some(),
        battery.is_some(),
        "snapshot and scenario disagree on node {id}'s power source"
    );
    let supply = snap.supply.as_ref().map(|&(drawn, synced)| {
        let mut sup = PowerSupply::new(battery.expect("checked above"));
        sup.restore_state(drawn, synced);
        sup
    });
    NodeState {
        id,
        low_mac,
        low_radio: restore_radio(&scen.low_profile, &snap.low_radio),
        high_mac,
        high_radio: snap
            .high_radio
            .as_ref()
            .map(|r| restore_radio(&scen.high_profile, r)),
        bcp_tx,
        bcp_rx,
        workload: snap.workload.clone(),
        pending_bytes: snap.pending_bytes,
        app_seq: snap.app_seq,
        tx_seq: snap.tx_seq,
        tag_seq: snap.tag_seq,
        high_refs: snap.high_refs,
        wake_pending: snap.wake_pending.clone(),
        header_overhear: snap.header_overhear,
        shortcuts: snap.shortcuts.clone(),
        listen_until: snap.listen_until,
        supply,
        died_at: snap.died_at,
    }
}

// ---------------------------------------------------------------------
// Forked sweeps
// ---------------------------------------------------------------------

/// Why a snapshot cannot be forked with a battery grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkError {
    /// The scenario routes by residual energy: the warm prefix's routing
    /// history would have depended on the batteries being injected, so
    /// the fork would not equal a cold run.
    EnergyAwareRouting,
    /// A node already died in the prefix: the prefix is not
    /// battery-independent.
    DeathInPrefix,
    /// The prefix already ran with finite batteries; forking can only
    /// brand an unpowered (mains) prefix.
    PoweredPrefix,
    /// The prefix already spent at least this node's whole injected
    /// battery: the death instant would lie *inside* the shared prefix,
    /// where a cold run's behaviour would have diverged before the fork
    /// point.
    PrefixExceedsBattery {
        /// The over-spent node.
        node: u32,
    },
}

impl std::fmt::Display for ForkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForkError::EnergyAwareRouting => {
                write!(f, "cannot fork: scenario routes by residual energy")
            }
            ForkError::DeathInPrefix => write!(f, "cannot fork: a node died in the prefix"),
            ForkError::PoweredPrefix => {
                write!(
                    f,
                    "cannot fork: the prefix already ran with finite batteries"
                )
            }
            ForkError::PrefixExceedsBattery { node } => write!(
                f,
                "cannot fork: node {node} already spent its whole injected battery in the prefix"
            ),
        }
    }
}

impl std::error::Error for ForkError {}

/// Brands a warm, unpowered prefix with a battery configuration: the
/// returned snapshot behaves as if the run had started with `power` —
/// every meter reading of the prefix is charged against the injected
/// batteries, and a `PowerCheck` fires at the fork instant so depletion
/// projection starts immediately.
///
/// A lifetime sweep uses this to run the (battery-independent) warm-up
/// prefix once and branch per grid cell, instead of re-simulating the
/// prefix for every cell. Discrete outcomes (death counts, delivery
/// counts) match the cold runs exactly; death *instants* may differ by
/// sub-microsecond float-summation noise, since the cold run charges the
/// battery in many small syncs and the fork charges the prefix in one.
pub fn fork_with_power(state: &WorldState, power: PowerConfig) -> Result<WorldState, ForkError> {
    if state.scen.route_weight != RouteWeight::ShortestHop {
        return Err(ForkError::EnergyAwareRouting);
    }
    if state.metrics.node_deaths > 0 || state.death_seen || state.alive.iter().any(|&a| !a) {
        return Err(ForkError::DeathInPrefix);
    }
    if state.nodes.iter().any(|n| n.supply.is_some()) {
        return Err(ForkError::PoweredPrefix);
    }
    let mut out = state.clone();
    out.scen.power = power;
    let t = out.time;
    let mut injected: Vec<(EvKey, Ev)> = Vec::new();
    for node in &mut out.nodes {
        let Some(batt) = out
            .scen
            .power
            .battery_for(node.id.index(), node.id == out.scen.sink)
        else {
            continue;
        };
        let metered = prefix_metered(node, t);
        if metered >= batt.capacity() {
            return Err(ForkError::PrefixExceedsBattery { node: node.id.0 });
        }
        node.supply = Some((metered, metered));
        let ev = Ev::PowerCheck { node: node.id };
        injected.push((
            EvKey {
                time: t,
                depth: 0,
                ord: ev.ord(),
            },
            ev,
        ));
    }
    out.pending.extend(injected);
    out.pending.sort_by_key(|e| e.0);
    Ok(out)
}

/// What a node's radios metered through the prefix, folded low then high
/// exactly as [`NodeState::metered_total`] folds it.
fn prefix_metered(node: &NodeSnapshot, t: SimTime) -> Energy {
    let total = |r: &RadioSnapshot| {
        EnergyLedger::from_raw_parts(r.buckets, r.since, r.power, r.bucket)
            .snapshot(t)
            .total()
    };
    let mut e = total(&node.low_radio);
    if let Some(hr) = &node.high_radio {
        e += total(hr);
    }
    e
}

// ---------------------------------------------------------------------
// Bounded race exploration
// ---------------------------------------------------------------------

/// Exploration bounds for [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Stop after this many complete interleavings.
    pub max_interleavings: u64,
    /// Stop one interleaving after this many steps.
    pub max_steps: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_interleavings: 10_000,
            max_steps: 200_000,
        }
    }
}

/// What [`explore`] found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Complete interleavings executed.
    pub interleavings: u64,
    /// Distinct branch points discovered (instants with more than one
    /// admissible next event).
    pub branch_points: u64,
    /// The widest tie seen (candidates at one branch point).
    pub max_ties: usize,
    /// `true` when a limit cut the exploration short of exhaustive.
    pub truncated: bool,
    /// Invariant violations observed, deduplicated.
    pub violations: Vec<String>,
}

/// Exhaustively re-executes every admissible same-timestamp event
/// ordering of `state` up to `end`, single-shard and single-stepped,
/// checking per-step invariants in each interleaving:
///
/// * a dead node's radios are both off;
/// * a receiver holding a medium lock is actually receiving (or dead —
///   its lock is released by the frame's end);
/// * a battery never over-draws its capacity, and never drains energy
///   the radio meters did not record;
/// * packets are never delivered to a dead destination.
///
/// Different interleavings may legitimately differ in *outcome* (ties
/// are real races; the production engine just picks the canonical
/// key order) — the point is that the invariants hold on every path.
/// Worlds of more than a handful of nodes explode combinatorially; keep
/// this to ≤10-node scenarios and rely on `limits`.
pub fn explore(state: &WorldState, end: SimTime, limits: ExploreLimits) -> ExploreReport {
    let base = state.with_shards(1);
    let mut report = ExploreReport::default();
    // DFS over branch-choice prefixes: each queued path replays its
    // prefix of tie choices and takes the canonical first candidate
    // beyond it, queueing the untried alternatives it walks past.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(path) = stack.pop() {
        if report.interleavings >= limits.max_interleavings {
            report.truncated = true;
            break;
        }
        let lw = restore(&base, &RunOptions::default());
        let LiveWorld {
            shards,
            gqueue,
            mut control,
            ..
        } = lw;
        let (shard, queue) = shards.into_iter().next().expect("single shard");
        let mut stepper = SingleStepper::new(shard, queue, gqueue);
        let mut prev_delivered: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        stepper.with_shard(|s| {
            for (&flow, f) in &s.metrics.flows {
                prev_delivered.insert(flow, f.delivered_packets);
            }
        });
        let mut trace: Vec<usize> = Vec::new();
        let mut steps: u64 = 0;
        while let Some(t) = stepper.next_time() {
            if t > end {
                break;
            }
            if steps >= limits.max_steps {
                report.truncated = true;
                break;
            }
            let ties = stepper.candidates().len();
            let choice = if ties > 1 {
                report.max_ties = report.max_ties.max(ties);
                let ch = if trace.len() < path.len() {
                    path[trace.len()]
                } else {
                    report.branch_points += 1;
                    for alt in 1..ties {
                        let mut next = trace.clone();
                        next.push(alt);
                        stack.push(next);
                    }
                    0
                };
                trace.push(ch);
                ch
            } else {
                0
            };
            stepper.step(&mut control, choice);
            steps += 1;
            stepper.with_shard(|s| {
                check_invariants(s, t, &mut prev_delivered, &mut report.violations)
            });
        }
        report.interleavings += 1;
    }
    report
}

fn push_violation(violations: &mut Vec<String>, msg: String) {
    if violations.len() < 64 && !violations.contains(&msg) {
        violations.push(msg);
    }
}

fn check_invariants(
    s: &mut ShardState,
    t: SimTime,
    prev_delivered: &mut HashMap<(NodeId, NodeId), u64>,
    violations: &mut Vec<String>,
) {
    let n = s.scen.topo.len();
    for i in 0..n {
        let Some(node) = s.nodes[i].as_ref() else {
            continue;
        };
        let alive = node.is_alive();
        if !alive {
            let mut off = node.low_radio.state() == RadioState::Off;
            if let Some(hr) = &node.high_radio {
                off &= hr.state() == RadioState::Off;
            }
            if !off {
                push_violation(
                    violations,
                    format!("t={t}: dead node {} has a radio powered on", node.id),
                );
            }
        }
        if let Some(sup) = &node.supply {
            let drawn = sup.battery().drawn().as_joules();
            let cap = sup.battery().capacity().as_joules();
            if drawn > cap + 1e-9 {
                push_violation(
                    violations,
                    format!(
                        "t={t}: node {} battery over-drawn ({drawn} J of {cap} J)",
                        node.id
                    ),
                );
            }
            let synced = sup.synced().as_joules();
            let metered = node.metered_total(t).as_joules();
            if synced > metered + 1e-9 {
                push_violation(
                    violations,
                    format!(
                        "t={t}: node {} supply drained {synced} J but the meters recorded {metered} J",
                        node.id
                    ),
                );
            }
        }
        for (ci, class) in [(0usize, Class::Low), (1, Class::High)] {
            if s.chans[ci].locked_rx(NodeId(i as u32)).is_some() {
                let receiving = node
                    .radio(class)
                    .map(|r| r.state() == RadioState::Receiving)
                    .unwrap_or(false);
                if alive && !receiving {
                    push_violation(
                        violations,
                        format!("t={t}: node {i} holds a {class:?} medium lock without receiving"),
                    );
                }
            }
        }
    }
    for (&flow, f) in &s.metrics.flows {
        let prev = prev_delivered.get(&flow).copied().unwrap_or(0);
        if f.delivered_packets > prev {
            let dead = s.nodes[flow.1.index()]
                .as_ref()
                .map(|n| !n.is_alive())
                .unwrap_or(false);
            if dead {
                push_violation(
                    violations,
                    format!("t={t}: delivery to dead node {}", flow.1),
                );
            }
        }
        prev_delivered.insert(flow, f.delivered_packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ModelKind;
    use crate::world::{RunOutput, World};
    use bcp_net::topo::Topology;
    use bcp_power::{Battery, PowerConfig};

    /// Two nodes, one hop, dual radio: exercises BCP handshakes, high
    /// radio wake/sleep, payload transport, fates, workload RNG.
    fn two_node_dual() -> Scenario {
        let mut s = Scenario::single_hop(ModelKind::DualRadio, 1, 100, 42);
        s.topo = Topology::line(2, 40.0);
        s.sink = NodeId(0);
        s.senders = vec![NodeId(1)];
        s.duration = SimDuration::from_secs(120);
        s.rate_bps = 2_000.0;
        s
    }

    /// A 4×4 sensor grid with a starved relay dying mid-run, under LPL
    /// duty-cycling: deaths, route repair, LPL lock-ons, multi-shard
    /// traffic all live in one scenario.
    fn grid_sensor_deaths(shards: usize) -> Scenario {
        let mut s = Scenario::single_hop(ModelKind::Sensor, 6, 10, 17);
        s.duration = SimDuration::from_secs(60);
        s.power = PowerConfig::unlimited().with_node_battery(5, Battery::ideal_joules(0.05));
        s.low_sleep = bcp_mac::sleep::SleepSchedule::lpl(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
        );
        s.rate_bps = 500.0;
        s.shards = shards;
        s
    }

    fn assert_same_stats(a: &RunOutput, b: &RunOutput, label: &str) {
        assert_eq!(a.stats.goodput, b.stats.goodput, "{label}: goodput");
        assert_eq!(a.stats.energy_j, b.stats.energy_j, "{label}: energy");
        assert_eq!(a.stats.mean_delay_s, b.stats.mean_delay_s, "{label}: delay");
        assert_eq!(a.stats.events, b.stats.events, "{label}: events");
        assert_eq!(a.stats.metrics, b.stats.metrics, "{label}: metrics");
        assert_eq!(a.stats.per_node, b.stats.per_node, "{label}: per-node");
        assert_eq!(
            a.stats.time_to_first_death_s, b.stats.time_to_first_death_s,
            "{label}: ttfd"
        );
    }

    #[test]
    fn segmented_run_is_bit_identical() {
        let scen = two_node_dual();
        let cold = World::run_with(&scen, &RunOptions::default());
        let mut lw = World::build(&scen, &RunOptions::default());
        lw.run_to(SimTime::from_secs(13));
        lw.run_to(SimTime::from_secs(47));
        let warm = lw.finish();
        assert_same_stats(&cold, &warm, "segmented");
    }

    #[test]
    fn snapshot_restore_resumes_bit_exact() {
        let scen = two_node_dual();
        let cold = World::run_with(&scen, &RunOptions::default());
        let mut lw = World::build(&scen, &RunOptions::default());
        lw.run_to(SimTime::from_secs(47));
        let snap = lw.snapshot();
        let warm = LiveWorld::restore(&snap, &RunOptions::default()).finish();
        assert_same_stats(&cold, &warm, "restored");
    }

    #[test]
    fn capture_of_restored_world_is_identical() {
        let mut lw = World::build(&two_node_dual(), &RunOptions::default());
        lw.run_to(SimTime::from_secs(31));
        let snap = lw.snapshot();
        let again = LiveWorld::restore(&snap, &RunOptions::default()).snapshot();
        assert_eq!(snap, again, "capture ∘ restore must be the identity");
    }

    #[test]
    fn reshard_through_snapshot_is_bit_exact() {
        // Pause a 2-shard world with deaths + LPL mid-run, restore the
        // snapshot as 1 shard, and finish: identical to the cold run.
        let cold = World::run_with(&grid_sensor_deaths(2), &RunOptions::default());
        let mut lw = World::build(&grid_sensor_deaths(2), &RunOptions::default());
        lw.run_to(SimTime::from_secs(30));
        let snap = lw.snapshot();
        let resharded = LiveWorld::restore(&snap.with_shards(1), &RunOptions::default()).finish();
        assert_same_stats(&cold, &resharded, "2→1 reshard");
        assert!(
            cold.stats.metrics.node_deaths > 0,
            "scenario exercises death"
        );
    }

    #[test]
    fn snapshot_is_shard_count_canonical() {
        // The same world paused at the same instant captures the same
        // WorldState whether it ran under 1 shard or 2.
        let pause = SimTime::from_secs(30);
        let mut one = World::build(&grid_sensor_deaths(1), &RunOptions::default());
        one.run_to(pause);
        let mut two = World::build(&grid_sensor_deaths(2), &RunOptions::default());
        two.run_to(pause);
        assert_eq!(
            one.snapshot().with_shards(0),
            two.snapshot().with_shards(0),
            "snapshots must be canonical across shard counts"
        );
    }

    #[test]
    fn series_resume_continues_the_grid_without_reemitting() {
        let opts = RunOptions {
            series_every: Some(SimDuration::from_secs(10)),
            ..RunOptions::default()
        };
        let scen = two_node_dual();
        let cold = World::run_with(&scen, &opts);
        let mut lw = World::build(&scen, &opts);
        lw.run_to(SimTime::from_secs(30));
        let snap = lw.snapshot();
        let resumed = LiveWorld::restore(&snap, &opts).finish();
        // The resumed run emits exactly the cold run's samples from the
        // checkpoint instant on — same instants, same deltas — and
        // nothing earlier.
        let boundary = 30.0 - 1e-9;
        let tail: Vec<_> = cold
            .series
            .iter()
            .filter(|s| s.t_s > boundary)
            .cloned()
            .collect();
        assert!(!tail.is_empty(), "cold run has post-checkpoint samples");
        assert!(
            resumed.series.iter().all(|s| s.t_s > boundary),
            "no pre-checkpoint sample may be re-emitted"
        );
        assert_eq!(
            resumed.series, tail,
            "the delta stream must continue exactly"
        );
    }

    #[test]
    fn fork_guards_reject_bad_prefixes() {
        // A powered prefix cannot be forked.
        let mut powered = World::build(
            &{
                let mut s = two_node_dual();
                s.power = PowerConfig::with_battery(Battery::ideal_joules(50.0));
                s
            },
            &RunOptions::default(),
        );
        powered.run_to(SimTime::from_secs(5));
        assert_eq!(
            fork_with_power(
                &powered.snapshot(),
                PowerConfig::with_battery(Battery::ideal_joules(10.0))
            )
            .unwrap_err(),
            ForkError::PoweredPrefix
        );
        // A battery smaller than the prefix's spend is rejected.
        let mut warm = World::build(&two_node_dual(), &RunOptions::default());
        warm.run_to(SimTime::from_secs(60));
        let err = fork_with_power(
            &warm.snapshot(),
            PowerConfig::with_battery(Battery::ideal_joules(1e-9)).battery_powered_sink(),
        )
        .unwrap_err();
        assert!(
            matches!(err, ForkError::PrefixExceedsBattery { .. }),
            "{err}"
        );
    }

    #[test]
    fn forked_battery_run_matches_cold_run() {
        // Sensor model so the metered prefix is pure radio time; the
        // forked run must reproduce the cold run's discrete outcomes.
        let base = {
            let mut s = Scenario::single_hop(ModelKind::Sensor, 1, 10, 42);
            s.topo = Topology::line(2, 40.0);
            s.sink = NodeId(0);
            s.senders = vec![NodeId(1)];
            s.duration = SimDuration::from_secs(200);
            s.rate_bps = 2_000.0;
            s
        };
        let power = PowerConfig::with_battery(Battery::ideal_joules(8.0));
        let cold = {
            let mut s = base.clone();
            s.power = power.clone();
            World::run(&s)
        };
        let mut warm = World::build(&base, &RunOptions::default());
        warm.run_to(SimTime::from_secs(10));
        let forked = fork_with_power(&warm.snapshot(), power).expect("forkable prefix");
        let stats = LiveWorld::restore(&forked, &RunOptions::default())
            .finish()
            .stats;
        assert_eq!(stats.metrics.node_deaths, cold.metrics.node_deaths);
        assert_eq!(
            stats.metrics.delivered_packets, cold.metrics.delivered_packets,
            "forked and cold runs must agree on deliveries"
        );
        let (a, b) = (
            stats.time_to_first_death_s.expect("sender dies"),
            cold.time_to_first_death_s.expect("sender dies"),
        );
        assert!(
            (a - b).abs() < 1e-6,
            "death instants agree to float noise: {a} vs {b}"
        );
    }

    #[test]
    fn explorer_enumerates_interleavings_and_invariants_hold() {
        // A 3-node line under LPL with a starved middle relay: ties are
        // plentiful (wake samples vs. receptions) and death interacts
        // with in-flight frames.
        let mut s = Scenario::single_hop(ModelKind::Sensor, 1, 10, 7);
        s.topo = Topology::line(3, 40.0);
        s.sink = NodeId(0);
        s.senders = vec![NodeId(2)];
        s.duration = SimDuration::from_secs(30);
        s.rate_bps = 500.0;
        s.low_sleep = bcp_mac::sleep::SleepSchedule::lpl(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
        );
        s.power = PowerConfig::unlimited().with_node_battery(1, Battery::ideal_joules(0.4));
        let mut lw = World::build(&s, &RunOptions::default());
        lw.run_to(SimTime::from_secs(8));
        let snap = lw.snapshot();
        let report = explore(
            &snap,
            SimTime::from_secs(9),
            ExploreLimits {
                max_interleavings: 300,
                max_steps: 50_000,
            },
        );
        assert!(report.interleavings >= 1, "at least the canonical path ran");
        assert!(
            report.violations.is_empty(),
            "invariants must hold on every path: {:?}",
            report.violations
        );
    }
}
