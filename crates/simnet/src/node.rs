//! Per-node simulation state: the full protocol stack of one mote.

use crate::events::Class;
use bcp_core::msg::BurstId;
use bcp_core::receiver::BcpReceiver;
use bcp_core::sender::BcpSender;
use bcp_mac::csma::CsmaMac;
use bcp_net::addr::NodeId;
use bcp_net::routing::ShortcutTable;
use bcp_power::PowerSupply;
use bcp_radio::device::Radio;
use bcp_radio::units::{Energy, Power};
use bcp_sim::time::SimTime;
use bcp_traffic::Workload;

/// One node's complete stack: two radios, two MACs, the BCP machines, a
/// traffic source and bookkeeping.
#[derive(Debug)]
pub struct NodeState {
    /// Platform identity.
    pub id: NodeId,
    /// Sensor-radio MAC.
    pub low_mac: CsmaMac,
    /// Sensor radio (always on in every model).
    pub low_radio: Radio,
    /// 802.11 MAC (absent in the pure sensor model).
    pub high_mac: Option<CsmaMac>,
    /// 802.11 radio (absent in the pure sensor model).
    pub high_radio: Option<Radio>,
    /// BCP sender machine (dual-radio model only).
    pub bcp_tx: Option<BcpSender>,
    /// BCP receiver machine (dual-radio model only).
    pub bcp_rx: Option<BcpReceiver>,
    /// Application traffic source (senders only).
    pub workload: Option<Workload>,
    /// Payload size of the next application packet.
    pub pending_bytes: usize,
    /// Application packet counter (feeds packet ids).
    pub app_seq: u64,
    /// Transmission counter (feeds [`TxId`](crate::events::TxId)s): node
    /// local, so transmission identities are shard-count independent.
    pub tx_seq: u64,
    /// Payload tag counter (node-local for the same reason).
    pub tag_seq: u64,
    /// Sessions currently holding the high radio awake.
    pub high_refs: u32,
    /// Sender-side bursts waiting for the high radio to finish waking.
    pub wake_pending: Vec<BurstId>,
    /// Accumulated header-overhearing energy on the low radio (the
    /// "Sensor-header" accounting variant).
    pub header_overhear: Energy,
    /// Learned high-radio shortcuts (route-optimization ablation).
    pub shortcuts: ShortcutTable,
    /// End of the post-burst listen window for shortcut learning.
    pub listen_until: SimTime,
    /// The node's finite energy supply (`None` = mains/unlimited).
    pub supply: Option<PowerSupply>,
    /// When the battery emptied; `None` while the node lives.
    pub died_at: Option<SimTime>,
}

impl NodeState {
    /// The MAC for `class`.
    ///
    /// # Panics
    ///
    /// Panics if the node has no radio of that class (model bug).
    pub fn mac_mut(&mut self, class: Class) -> &mut CsmaMac {
        match class {
            Class::Low => &mut self.low_mac,
            Class::High => self.high_mac.as_mut().expect("node has no high MAC"),
        }
    }

    /// The MAC for `class`, immutable (same panic contract).
    pub fn mac(&self, class: Class) -> &CsmaMac {
        match class {
            Class::Low => &self.low_mac,
            Class::High => self.high_mac.as_ref().expect("node has no high MAC"),
        }
    }

    /// The radio for `class`.
    ///
    /// # Panics
    ///
    /// Panics if the node has no radio of that class (model bug).
    pub fn radio_mut(&mut self, class: Class) -> &mut Radio {
        match class {
            Class::Low => &mut self.low_radio,
            Class::High => self.high_radio.as_mut().expect("node has no high radio"),
        }
    }

    /// The radio for `class`, immutable.
    pub fn radio(&self, class: Class) -> Option<&Radio> {
        match class {
            Class::Low => Some(&self.low_radio),
            Class::High => self.high_radio.as_ref(),
        }
    }

    /// `true` when the node has a radio of this class at all.
    pub fn has_class(&self, class: Class) -> bool {
        match class {
            Class::Low => true,
            Class::High => self.high_radio.is_some(),
        }
    }

    /// `true` while the node's supply (if any) still holds charge.
    pub fn is_alive(&self) -> bool {
        self.died_at.is_none()
    }

    /// Cumulative metered energy over both radios through `t` — the
    /// reading the battery drains against.
    pub fn metered_total(&self, t: SimTime) -> Energy {
        let mut e = self.low_radio.report(t).total();
        if let Some(hr) = &self.high_radio {
            e += hr.report(t).total();
        }
        e
    }

    /// The node's instantaneous power draw over both radios.
    pub fn current_draw(&self) -> Power {
        let mut p = self.low_radio.current_draw();
        if let Some(hr) = &self.high_radio {
            p = p + hr.current_draw();
        }
        p
    }
}
