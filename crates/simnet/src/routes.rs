//! The whole-world side of the sharded simulator: the immutable
//! route/liveness snapshot every shard reads, and the coordinator logic
//! that rebuilds it at global events (node deaths, periodic refreshes).
//!
//! Shards never mutate shared state. Between global events the snapshot
//! is constant; at a global event the coordinator has exclusive access,
//! recomputes routes from the residual energies across all shards, and
//! installs a fresh [`Arc`] into every shard. Because global events are
//! deferred by one link latency (like every cross-node signal), they sit
//! at a deterministic position in the event order and the swap is
//! observed identically for every shard count.

use crate::events::GlobalEv;
use crate::metrics::{Metrics, SeriesSample};
use crate::node::NodeState;
use crate::scenario::{ModelKind, Scenario};
use crate::shard::ShardState;
use bcp_net::addr::NodeId;
use bcp_net::routing::{Dissemination, RouteWeight, Routes};
use bcp_power::BatteryModel;
use bcp_radio::energy::EnergyBucket;
use bcp_radio::units::Energy;
use bcp_sim::conservative::{PdesControl, ShardsMut};
use bcp_sim::keyed::{EvKey, Keyed};
use bcp_sim::time::{SimDuration, SimTime};
use bcp_sim::trace::{TraceEvent, TraceRecord};
use bcp_traffic::TrafficPattern;
use std::sync::Arc;

/// The coordinator-published snapshot of whole-world state.
#[derive(Debug)]
pub(crate) struct SharedNet {
    /// Low-radio routes.
    pub low_routes: Routes,
    /// High-radio routes.
    pub high_routes: Routes,
    /// Per-node liveness as of the last global event.
    pub alive: Vec<bool>,
    /// `true` once a death has been announced: ends the "all nodes alive"
    /// prefix that the before-first-death metrics measure.
    pub death_seen: bool,
    /// The source-rooted dissemination tree broadcast traffic relays
    /// down: the reverse of the data routes toward the source. Present
    /// exactly under [`TrafficPattern::Broadcast`], and rebuilt with the
    /// routes at every global event — route repair after a death repairs
    /// the tree in the same stroke.
    pub dissem: Option<Dissemination>,
}

impl SharedNet {
    /// The routes a model's data ultimately depends on: the low radio for
    /// the sensor model and for BCP (whose handshake travels over it), the
    /// high radio for pure 802.11.
    pub fn data_routes(&self, model: ModelKind) -> &Routes {
        match model {
            ModelKind::Sensor | ModelKind::DualRadio => &self.low_routes,
            ModelKind::Dot11 => &self.high_routes,
        }
    }
}

/// Per-node residual energy for route weighting: a node's remaining
/// charge in joules, or `INFINITY` for mains-powered nodes.
pub(crate) fn initial_residuals(scen: &Scenario) -> Vec<f64> {
    scen.topo
        .nodes()
        .map(|id| {
            scen.power
                .battery_for(id.index(), id == scen.sink)
                .map(|b| b.capacity().as_joules())
                .unwrap_or(f64::INFINITY)
        })
        .collect()
}

pub(crate) fn compute_routes(
    scen: &Scenario,
    residual: &[f64],
    dead: &[NodeId],
) -> (Routes, Routes) {
    let mk = |range_m: f64| match scen.route_weight {
        RouteWeight::ShortestHop => Routes::shortest_hop_excluding(&scen.topo, range_m, dead),
        RouteWeight::MaxMinResidual => {
            Routes::max_min_residual(&scen.topo, range_m, residual, dead)
        }
    };
    (mk(scen.low_profile.range_m), mk(scen.high_profile.range_m))
}

/// The dissemination tree for a broadcast scenario, rooted at the source
/// over the model's data routes; `None` for other patterns.
pub(crate) fn compute_dissem(
    scen: &Scenario,
    low_routes: &Routes,
    high_routes: &Routes,
) -> Option<Dissemination> {
    match scen.pattern {
        TrafficPattern::Broadcast { source } => {
            let routes = match scen.model {
                ModelKind::Sensor | ModelKind::DualRadio => low_routes,
                ModelKind::Dot11 => high_routes,
            };
            Some(Dissemination::from_routes(routes, source))
        }
        _ => None,
    }
}

/// Builds the snapshot a run starts with (everyone alive, full charge).
pub(crate) fn initial_shared(scen: &Scenario) -> Arc<SharedNet> {
    let (low_routes, high_routes) = compute_routes(scen, &initial_residuals(scen), &[]);
    let dissem = compute_dissem(scen, &low_routes, &high_routes);
    Arc::new(SharedNet {
        low_routes,
        high_routes,
        alive: vec![true; scen.topo.len()],
        death_seen: false,
        dissem,
    })
}

/// The coordinator: executes global events with exclusive access to all
/// shards and owns the whole-run slice of the metrics (deaths,
/// partition).
#[derive(Debug)]
pub(crate) struct Control {
    pub scen: Arc<Scenario>,
    /// The gossip flow list, resolved once at build (it is a constant of
    /// the scenario; re-deriving it per death event would repeat the
    /// whole pair draw inside the serial global-event step). Empty for
    /// other patterns.
    pub gossip_flows: Vec<(NodeId, NodeId)>,
    /// Global metrics slice: node deaths, first death, partition instant.
    pub metrics: Metrics,
    /// Global events executed (part of the run's event count).
    pub global_events: u64,
    /// Flight-recorder slice for coordinator-side events (route repairs
    /// and refreshes); `None` when tracing is off.
    pub trace: Option<Vec<TraceRecord>>,
    /// Per-window time-series sampler; `None` when no series was asked
    /// for.
    pub series: Option<SeriesState>,
}

/// Cumulative run totals at one sample instant, folded the same way
/// `World::finalize` folds the end-of-run figures (node-id order), so the
/// series' running sum lands bit-exactly on the final [`RunStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Cumulative {
    /// Packets generated.
    pub gen_p: u64,
    /// Payload bits generated.
    pub gen_b: u64,
    /// Packets delivered.
    pub del_p: u64,
    /// Payload bits delivered.
    pub del_b: u64,
    /// Model-accounted energy (joules).
    pub energy_j: f64,
    /// Low-radio idle energy (joules).
    pub low_idle_j: f64,
    /// Low-radio sleep energy (joules).
    pub low_sleep_j: f64,
}

/// One pass over the shards collecting the cumulative series quantities
/// at a sample instant. Per-node energy contributions are gathered
/// id-indexed and folded in id order at the end — the same accumulation
/// sequence as `World::finalize` — so the figures are shard-count
/// invariant bit for bit.
#[derive(Debug)]
pub(crate) struct SeriesScan {
    model: ModelKind,
    // (low tx+rx, high all-buckets, low idle, low sleep) per node id.
    per_node: Vec<(Energy, Energy, Energy, Energy)>,
    alive: Vec<bool>,
    gen_p: u64,
    gen_b: u64,
    del_p: u64,
    del_b: u64,
}

impl SeriesScan {
    pub fn new(scen: &Scenario) -> Self {
        let n = scen.topo.len();
        SeriesScan {
            model: scen.model,
            per_node: vec![(Energy::ZERO, Energy::ZERO, Energy::ZERO, Energy::ZERO); n],
            alive: vec![false; n],
            gen_p: 0,
            gen_b: 0,
            del_p: 0,
            del_b: 0,
        }
    }

    /// Folds one shard's owned nodes and counters in (the radio reports
    /// are non-destructive reads, so scanning never perturbs the run).
    pub fn add_shard(&mut self, s: &ShardState, at: SimTime) {
        self.gen_p += s.metrics.generated_packets;
        self.gen_b += s.metrics.generated_bits;
        self.del_p += s.metrics.delivered_packets;
        self.del_b += s.metrics.delivered_bits;
        for node in s.owned_nodes() {
            let i = node.id.index();
            self.alive[i] = node.is_alive();
            self.per_node[i] = node_energy_split(self.model, node, at);
        }
    }

    /// The cumulative totals plus the live-node count, folding energies
    /// in node-id order exactly as `World::finalize` does.
    pub fn finish(self) -> (Cumulative, u64) {
        let mut energy = Energy::ZERO;
        let mut idle = Energy::ZERO;
        let mut sleep = Energy::ZERO;
        for &(low_txrx, high_all, low_idle, low_sleep) in &self.per_node {
            idle += low_idle;
            sleep += low_sleep;
            energy += low_txrx;
            energy += high_all;
        }
        let live = self.alive.iter().filter(|&&a| a).count() as u64;
        (
            Cumulative {
                gen_p: self.gen_p,
                gen_b: self.gen_b,
                del_p: self.del_p,
                del_b: self.del_b,
                energy_j: energy.as_joules(),
                low_idle_j: idle.as_joules(),
                low_sleep_j: sleep.as_joules(),
            },
            live,
        )
    }
}

/// One node's energy contributions at `at`, split as `(low tx+rx, high
/// all-buckets, low idle, low sleep)` under the model's accounting —
/// the per-node terms of the [`crate::metrics::RunStats::energy_j`] /
/// idle-floor folds.
fn node_energy_split(
    model: ModelKind,
    node: &NodeState,
    at: SimTime,
) -> (Energy, Energy, Energy, Energy) {
    use EnergyBucket as B;
    let low = node.low_radio.report(at);
    let low_txrx = match model {
        ModelKind::Sensor | ModelKind::DualRadio => low.total_of(&[B::Tx, B::Rx]),
        ModelKind::Dot11 => Energy::ZERO,
    };
    let high_all = match (&node.high_radio, model) {
        (Some(hr), ModelKind::Dot11 | ModelKind::DualRadio) => {
            hr.report(at)
                .total_of(&[B::Tx, B::Rx, B::Overhear, B::Idle, B::Sleep, B::Wakeup])
        }
        _ => Energy::ZERO,
    };
    (low_txrx, high_all, low.of(B::Idle), low.of(B::Sleep))
}

/// The per-window series sampler: previous cumulative snapshot, the
/// emitted delta samples, and where the sample grid continues after the
/// event queues drain.
#[derive(Debug)]
pub(crate) struct SeriesState {
    /// The sampling interval.
    pub every: SimDuration,
    /// The next sample instant not yet emitted (the engine fires samples
    /// only while events pend; `World::run_with` emits the tail from the
    /// final state).
    pub next: SimTime,
    /// The last instant actually emitted, if any.
    pub last: Option<SimTime>,
    /// The emitted samples, in time order.
    pub samples: Vec<SeriesSample>,
    /// The cumulative totals at the last emitted sample — the baseline the
    /// next delta subtracts from. Captured verbatim by checkpoints so a
    /// resumed series continues the telescoping sum bit-exactly.
    pub(crate) prev: Cumulative,
}

impl SeriesState {
    pub fn new(every: SimDuration) -> Self {
        SeriesState {
            every,
            next: SimTime::ZERO + every,
            last: None,
            samples: Vec::new(),
            prev: Cumulative::default(),
        }
    }

    /// Emits the delta sample ending at `at` and advances the grid.
    pub fn record(&mut self, at: SimTime, scan: SeriesScan, queue_depth: Vec<usize>) {
        let (cum, live) = scan.finish();
        self.samples.push(SeriesSample {
            t_s: at.as_secs_f64(),
            generated_packets: cum.gen_p - self.prev.gen_p,
            generated_bits: cum.gen_b - self.prev.gen_b,
            delivered_packets: cum.del_p - self.prev.del_p,
            delivered_bits: cum.del_b - self.prev.del_b,
            energy_j: cum.energy_j - self.prev.energy_j,
            energy_low_idle_j: cum.low_idle_j - self.prev.low_idle_j,
            energy_low_sleep_j: cum.low_sleep_j - self.prev.low_sleep_j,
            live_nodes: live,
            queue_depth,
        });
        self.prev = cum;
        self.last = Some(at);
        self.next = at + self.every;
    }
}

impl Control {
    /// Recomputes routes and liveness from the current residual energies
    /// across every shard and installs the fresh snapshot everywhere.
    fn republish(
        &self,
        shards: &mut ShardsMut<'_, ShardState>,
        death_seen: bool,
    ) -> Arc<SharedNet> {
        let n = self.scen.topo.len();
        let mut residual = vec![f64::INFINITY; n];
        let mut alive = vec![true; n];
        shards.for_each(|_, s| {
            for node in s.owned_nodes() {
                let i = node.id.index();
                residual[i] = match &node.supply {
                    Some(sup) => sup.battery().remaining().as_joules(),
                    None => f64::INFINITY,
                };
                alive[i] = node.is_alive();
            }
        });
        let mut dead: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|d| !alive[d.index()])
            .collect();
        dead.sort();
        let (low_routes, high_routes) = compute_routes(&self.scen, &residual, &dead);
        let dissem = compute_dissem(&self.scen, &low_routes, &high_routes);
        let snap = Arc::new(SharedNet {
            low_routes,
            high_routes,
            alive,
            death_seen,
            dissem,
        });
        shards.for_each(|_, s| s.shared = Arc::clone(&snap));
        snap
    }

    /// Route repair after a death: survivors recompute paths around the
    /// corpse, learned shortcuts through it die with it, and the run
    /// records the first moment a sender lost the sink.
    fn node_died(&mut self, shards: &mut ShardsMut<'_, ShardState>, node: NodeId, at: SimTime) {
        self.metrics.on_node_died(at);
        let snap = self.republish(shards, true);
        // A learned shortcut through the corpse is a blackhole: the
        // repaired trees route around it, so must the shortcut tables.
        shards.for_each(|_, s| {
            for n in s.owned_nodes_mut() {
                n.shortcuts.invalidate_via(node);
            }
        });
        self.check_partition(&snap, at, node);
    }

    fn check_partition(&mut self, snap: &SharedNet, at: SimTime, dead: NodeId) {
        if self.metrics.partition.is_some() {
            return;
        }
        let routes = snap.data_routes(self.scen.model);
        let severed = match self.scen.pattern {
            // The sink is "disconnected" the first time any data source
            // can no longer reach it: the sink itself died, a sender
            // died, or a sender's every route crosses corpses.
            TrafficPattern::Converge => {
                let sink = self.scen.sink;
                dead == sink
                    || self
                        .scen
                        .senders
                        .iter()
                        .any(|&s| !snap.alive[s.index()] || routes.next_hop(s, sink).is_none())
            }
            // The dissemination is "partitioned" when the source died or
            // some *surviving* node fell out of the tree: corpses leave
            // the recipient set, but a live node the flood cannot reach
            // is data lost.
            TrafficPattern::Broadcast { source } => {
                let tree = snap.dissem.as_ref().expect("broadcast publishes a tree");
                dead == source
                    || self
                        .scen
                        .topo
                        .nodes()
                        .any(|r| r != source && snap.alive[r.index()] && !tree.contains(r))
            }
            // A gossip mesh is severed when any flow lost an endpoint or
            // every path between its endpoints crosses corpses.
            TrafficPattern::Gossip { .. } => self.gossip_flows.iter().any(|&(s, d)| {
                !snap.alive[s.index()] || !snap.alive[d.index()] || routes.next_hop(s, d).is_none()
            }),
        };
        if severed {
            self.metrics.on_partition(at);
        }
    }
}

impl PdesControl<ShardState> for Control {
    fn on_global(
        &mut self,
        shards: &mut ShardsMut<'_, ShardState>,
        now: SimTime,
        ev: GlobalEv,
        out: &mut Vec<(SimTime, GlobalEv)>,
    ) {
        self.global_events += 1;
        let ord = ev.ord();
        match ev {
            GlobalEv::NodeDied { node, at } => {
                self.node_died(shards, node, at);
                if let Some(tr) = self.trace.as_mut() {
                    // Partition state is read *after* the repair, so the
                    // record reports what the survivors now see.
                    tr.push(TraceRecord {
                        key: EvKey {
                            time: now,
                            depth: 0,
                            ord,
                        },
                        ev: TraceEvent::RouteRepair {
                            dead: node.0,
                            partition: self.metrics.partition.is_some(),
                        },
                    });
                }
            }
            GlobalEv::RouteRefresh => {
                let death_seen = self.metrics.first_death.is_some();
                self.republish(shards, death_seen);
                if let Some(every) = self.scen.power.reroute_every {
                    out.push((now + every, GlobalEv::RouteRefresh));
                }
                if let Some(tr) = self.trace.as_mut() {
                    tr.push(TraceRecord {
                        key: EvKey {
                            time: now,
                            depth: 0,
                            ord,
                        },
                        ev: TraceEvent::RouteRefresh,
                    });
                }
            }
        }
    }

    fn on_sample(
        &mut self,
        shards: &mut ShardsMut<'_, ShardState>,
        now: SimTime,
        queue_depths: &[usize],
    ) {
        let Some(series) = self.series.as_mut() else {
            return;
        };
        // A resumed run restarts the engine's sample grid from zero;
        // instants before the restored `next` were already emitted (and
        // persisted) before the checkpoint, so they must not repeat.
        if now < series.next {
            return;
        }
        let mut scan = SeriesScan::new(&self.scen);
        shards.for_each(|_, s| scan.add_shard(s, now));
        series.record(now, scan, queue_depths.to_vec());
    }
}
