//! The whole-world side of the sharded simulator: the immutable
//! route/liveness snapshot every shard reads, and the coordinator logic
//! that rebuilds it at global events (node deaths, periodic refreshes).
//!
//! Shards never mutate shared state. Between global events the snapshot
//! is constant; at a global event the coordinator has exclusive access,
//! recomputes routes from the residual energies across all shards, and
//! installs a fresh [`Arc`] into every shard. Because global events are
//! deferred by one link latency (like every cross-node signal), they sit
//! at a deterministic position in the event order and the swap is
//! observed identically for every shard count.

use crate::events::GlobalEv;
use crate::metrics::Metrics;
use crate::scenario::{ModelKind, Scenario};
use crate::shard::ShardState;
use bcp_net::addr::NodeId;
use bcp_net::routing::{Dissemination, RouteWeight, Routes};
use bcp_power::BatteryModel;
use bcp_sim::conservative::{PdesControl, ShardsMut};
use bcp_sim::time::SimTime;
use bcp_traffic::TrafficPattern;
use std::sync::Arc;

/// The coordinator-published snapshot of whole-world state.
#[derive(Debug)]
pub(crate) struct SharedNet {
    /// Low-radio routes.
    pub low_routes: Routes,
    /// High-radio routes.
    pub high_routes: Routes,
    /// Per-node liveness as of the last global event.
    pub alive: Vec<bool>,
    /// `true` once a death has been announced: ends the "all nodes alive"
    /// prefix that the before-first-death metrics measure.
    pub death_seen: bool,
    /// The source-rooted dissemination tree broadcast traffic relays
    /// down: the reverse of the data routes toward the source. Present
    /// exactly under [`TrafficPattern::Broadcast`], and rebuilt with the
    /// routes at every global event — route repair after a death repairs
    /// the tree in the same stroke.
    pub dissem: Option<Dissemination>,
}

impl SharedNet {
    /// The routes a model's data ultimately depends on: the low radio for
    /// the sensor model and for BCP (whose handshake travels over it), the
    /// high radio for pure 802.11.
    pub fn data_routes(&self, model: ModelKind) -> &Routes {
        match model {
            ModelKind::Sensor | ModelKind::DualRadio => &self.low_routes,
            ModelKind::Dot11 => &self.high_routes,
        }
    }
}

/// Per-node residual energy for route weighting: a node's remaining
/// charge in joules, or `INFINITY` for mains-powered nodes.
pub(crate) fn initial_residuals(scen: &Scenario) -> Vec<f64> {
    scen.topo
        .nodes()
        .map(|id| {
            scen.power
                .battery_for(id.index(), id == scen.sink)
                .map(|b| b.capacity().as_joules())
                .unwrap_or(f64::INFINITY)
        })
        .collect()
}

pub(crate) fn compute_routes(
    scen: &Scenario,
    residual: &[f64],
    dead: &[NodeId],
) -> (Routes, Routes) {
    let mk = |range_m: f64| match scen.route_weight {
        RouteWeight::ShortestHop => Routes::shortest_hop_excluding(&scen.topo, range_m, dead),
        RouteWeight::MaxMinResidual => {
            Routes::max_min_residual(&scen.topo, range_m, residual, dead)
        }
    };
    (mk(scen.low_profile.range_m), mk(scen.high_profile.range_m))
}

/// The dissemination tree for a broadcast scenario, rooted at the source
/// over the model's data routes; `None` for other patterns.
pub(crate) fn compute_dissem(
    scen: &Scenario,
    low_routes: &Routes,
    high_routes: &Routes,
) -> Option<Dissemination> {
    match scen.pattern {
        TrafficPattern::Broadcast { source } => {
            let routes = match scen.model {
                ModelKind::Sensor | ModelKind::DualRadio => low_routes,
                ModelKind::Dot11 => high_routes,
            };
            Some(Dissemination::from_routes(routes, source))
        }
        _ => None,
    }
}

/// Builds the snapshot a run starts with (everyone alive, full charge).
pub(crate) fn initial_shared(scen: &Scenario) -> Arc<SharedNet> {
    let (low_routes, high_routes) = compute_routes(scen, &initial_residuals(scen), &[]);
    let dissem = compute_dissem(scen, &low_routes, &high_routes);
    Arc::new(SharedNet {
        low_routes,
        high_routes,
        alive: vec![true; scen.topo.len()],
        death_seen: false,
        dissem,
    })
}

/// The coordinator: executes global events with exclusive access to all
/// shards and owns the whole-run slice of the metrics (deaths,
/// partition).
#[derive(Debug)]
pub(crate) struct Control {
    pub scen: Arc<Scenario>,
    /// The gossip flow list, resolved once at build (it is a constant of
    /// the scenario; re-deriving it per death event would repeat the
    /// whole pair draw inside the serial global-event step). Empty for
    /// other patterns.
    pub gossip_flows: Vec<(NodeId, NodeId)>,
    /// Global metrics slice: node deaths, first death, partition instant.
    pub metrics: Metrics,
    /// Global events executed (part of the run's event count).
    pub global_events: u64,
}

impl Control {
    /// Recomputes routes and liveness from the current residual energies
    /// across every shard and installs the fresh snapshot everywhere.
    fn republish(
        &self,
        shards: &mut ShardsMut<'_, ShardState>,
        death_seen: bool,
    ) -> Arc<SharedNet> {
        let n = self.scen.topo.len();
        let mut residual = vec![f64::INFINITY; n];
        let mut alive = vec![true; n];
        shards.for_each(|_, s| {
            for node in s.owned_nodes() {
                let i = node.id.index();
                residual[i] = match &node.supply {
                    Some(sup) => sup.battery().remaining().as_joules(),
                    None => f64::INFINITY,
                };
                alive[i] = node.is_alive();
            }
        });
        let mut dead: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|d| !alive[d.index()])
            .collect();
        dead.sort();
        let (low_routes, high_routes) = compute_routes(&self.scen, &residual, &dead);
        let dissem = compute_dissem(&self.scen, &low_routes, &high_routes);
        let snap = Arc::new(SharedNet {
            low_routes,
            high_routes,
            alive,
            death_seen,
            dissem,
        });
        shards.for_each(|_, s| s.shared = Arc::clone(&snap));
        snap
    }

    /// Route repair after a death: survivors recompute paths around the
    /// corpse, learned shortcuts through it die with it, and the run
    /// records the first moment a sender lost the sink.
    fn node_died(&mut self, shards: &mut ShardsMut<'_, ShardState>, node: NodeId, at: SimTime) {
        self.metrics.on_node_died(at);
        let snap = self.republish(shards, true);
        // A learned shortcut through the corpse is a blackhole: the
        // repaired trees route around it, so must the shortcut tables.
        shards.for_each(|_, s| {
            for n in s.owned_nodes_mut() {
                n.shortcuts.invalidate_via(node);
            }
        });
        self.check_partition(&snap, at, node);
    }

    fn check_partition(&mut self, snap: &SharedNet, at: SimTime, dead: NodeId) {
        if self.metrics.partition.is_some() {
            return;
        }
        let routes = snap.data_routes(self.scen.model);
        let severed = match self.scen.pattern {
            // The sink is "disconnected" the first time any data source
            // can no longer reach it: the sink itself died, a sender
            // died, or a sender's every route crosses corpses.
            TrafficPattern::Converge => {
                let sink = self.scen.sink;
                dead == sink
                    || self
                        .scen
                        .senders
                        .iter()
                        .any(|&s| !snap.alive[s.index()] || routes.next_hop(s, sink).is_none())
            }
            // The dissemination is "partitioned" when the source died or
            // some *surviving* node fell out of the tree: corpses leave
            // the recipient set, but a live node the flood cannot reach
            // is data lost.
            TrafficPattern::Broadcast { source } => {
                let tree = snap.dissem.as_ref().expect("broadcast publishes a tree");
                dead == source
                    || self
                        .scen
                        .topo
                        .nodes()
                        .any(|r| r != source && snap.alive[r.index()] && !tree.contains(r))
            }
            // A gossip mesh is severed when any flow lost an endpoint or
            // every path between its endpoints crosses corpses.
            TrafficPattern::Gossip { .. } => self.gossip_flows.iter().any(|&(s, d)| {
                !snap.alive[s.index()] || !snap.alive[d.index()] || routes.next_hop(s, d).is_none()
            }),
        };
        if severed {
            self.metrics.on_partition(at);
        }
    }
}

impl PdesControl<ShardState> for Control {
    fn on_global(
        &mut self,
        shards: &mut ShardsMut<'_, ShardState>,
        now: SimTime,
        ev: GlobalEv,
        out: &mut Vec<(SimTime, GlobalEv)>,
    ) {
        self.global_events += 1;
        match ev {
            GlobalEv::NodeDied { node, at } => self.node_died(shards, node, at),
            GlobalEv::RouteRefresh => {
                let death_seen = self.metrics.first_death.is_some();
                self.republish(shards, death_seen);
                if let Some(every) = self.scen.power.reroute_every {
                    out.push((now + every, GlobalEv::RouteRefresh));
                }
            }
        }
    }
}
