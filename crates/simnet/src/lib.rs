//! # bcp-simnet — the dual-radio network simulator
//!
//! Assembles every substrate of the reproduction into full-node
//! simulations of the paper's Section 4 evaluation:
//!
//! * [`scenario::Scenario`] — one run's parameterisation, with presets
//!   for the paper's single-hop (Lucent 11 Mbps) and multi-hop (Cabletron)
//!   grid scenarios.
//! * [`spec::ScenarioBuilder`] — validated scenario construction (typed
//!   [`spec::SpecError`]s instead of panics), plus the `.scn` text format
//!   ([`spec::parse_spec`] / [`spec::emit_spec`]) so whole scenarios live
//!   in version-controlled files.
//! * [`scenario::ModelKind`] — the three compared stacks: `Sensor`,
//!   `Dot11` and `DualRadio` (BCP).
//! * [`world::World`] — the event-driven core binding radios, MACs,
//!   routing, the shared media and the BCP machines together.
//! * [`metrics::RunStats`] — goodput, normalized energy (J/Kbit) and mean
//!   delay, exactly as the paper defines them — plus, when the scenario
//!   provisions finite batteries ([`scenario::Scenario::with_battery`]),
//!   the lifetime measures `time_to_first_death_s`,
//!   `time_to_partition_s` and `delivered_before_first_death`.
//!
//! With a battery configured, a node whose supply empties goes silent
//! (no transmitting, receiving, or relaying), survivors rebuild their
//! routes around the corpse, and identical seeds reproduce identical
//! death times.
//!
//! Beyond the paper's convergecast, [`TrafficPattern`] opens the dual
//! workloads: sink-to-all broadcast down a dissemination tree (flooding
//! on the low radio, or BCP bulk relay per tree edge on the high radio)
//! and deterministic many-to-many gossip flows — with per-flow
//! [`FlowStats`] whose sums equal the global counters exactly.
//!
//! # Examples
//!
//! A scaled-down single-hop run (5 senders, burst 100, 60 simulated
//! seconds):
//!
//! ```
//! use bcp_simnet::{ModelKind, Scenario};
//! use bcp_sim::time::SimDuration;
//!
//! let stats = Scenario::single_hop(ModelKind::DualRadio, 5, 100, 1)
//!     .with_duration(SimDuration::from_secs(60))
//!     .run();
//! assert!(stats.goodput > 0.0 && stats.goodput <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
mod dispatch;
pub mod events;
pub mod metrics;
pub mod node;
mod power;
mod routes;
pub mod scenario;
mod shard;
pub mod snapshot;
pub mod spec;
pub mod world;

pub use bcp_mac::sleep::SleepSchedule;
pub use bcp_traffic::TrafficPattern;
pub use metrics::{EngineStats, FlowStats, Metrics, NodePowerReport, RunStats, SeriesSample};
pub use scenario::{HighRoute, ModelKind, Scenario, WorkloadKind};
pub use snapshot::{explore, fork_with_power, ExploreLimits, ExploreReport, ForkError, WorldState};
pub use spec::{emit_spec, parse_spec, ScenarioBuilder, SpecError};
pub use world::{LiveWorld, RunOptions, RunOutput, World};
