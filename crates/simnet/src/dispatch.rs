//! Binding the sans-IO protocol machines to the shard: MAC actions, BCP
//! sender/receiver actions, payload bookkeeping and the high-radio power
//! reference counting. Everything here touches exactly one owned node
//! (plus the shard-local payload/timer tables); cross-node effects only
//! ever leave through [`ShardState::start_tx`].

use crate::events::{Class, Ev, Payload};
use crate::scenario::HighRoute;
use crate::shard::{trace_class, Fate, ShardCtx, ShardState};
use bcp_core::msg::{BurstId, HandshakeMsg};
use bcp_core::receiver::ReceiverAction;
use bcp_core::sender::{DropReason, SenderAction};
use bcp_mac::sleep::SleepSchedule;
use bcp_mac::types::{MacAction, MacEvent, MacFrame};
use bcp_net::addr::NodeId;
use bcp_radio::device::RadioState;
use bcp_sim::trace::{TraceClass, TraceDrop, TraceEvent, TraceRadioState};

impl ShardState {
    // ------------------------------------------------------------------
    // MAC binding
    // ------------------------------------------------------------------

    /// Feeds one event to a node's MAC and executes the resulting
    /// actions. `payload` resolves the frame tag when the event delivers
    /// a data frame (receptions carry their payload with them — the
    /// sender's tag table lives on another shard).
    pub(crate) fn mac_event(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        class: Class,
        ev: MacEvent,
        payload: Option<&Payload>,
    ) {
        let mut actions = Vec::new();
        {
            let n = self.node_mut(node);
            if !n.has_class(class) || !n.is_alive() {
                return;
            }
            n.mac_mut(class).handle(ctx.now(), ev, &mut actions);
        }
        for a in actions {
            self.mac_action(ctx, node, class, a, payload);
        }
    }

    fn mac_action(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        class: Class,
        a: MacAction,
        payload: Option<&Payload>,
    ) {
        match a {
            MacAction::StartTx(frame) => self.start_tx(ctx, node, class, frame),
            MacAction::SetTimer { kind, delay } => {
                let id = ctx.after(delay, Ev::MacTimer { node, class, kind });
                if let Some(old) = self.mac_timers.insert((node.0, class.index(), kind), id) {
                    ctx.cancel(old);
                }
            }
            MacAction::CancelTimer { kind } => {
                if let Some(id) = self.mac_timers.remove(&(node.0, class.index(), kind)) {
                    ctx.cancel(id);
                }
            }
            MacAction::Deliver(frame) => self.deliver(ctx, node, class, frame, payload),
            MacAction::TxOutcome { ok, tag, .. } => self.tx_outcome(ctx, node, class, ok, tag),
        }
    }

    fn deliver(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        class: Class,
        frame: MacFrame,
        payload: Option<&Payload>,
    ) {
        let Some(payload) = payload else {
            debug_assert!(false, "delivered frame without payload (tag {})", frame.tag);
            return;
        };
        let now = ctx.now();
        match payload {
            Payload::SensorData(pkt) => {
                let pkt = *pkt;
                if node == pkt.dest {
                    if !self.deliver_copy(ctx, node, &pkt, now) {
                        return;
                    }
                    if self.is_broadcast_flood(&pkt) {
                        self.broadcast_relay(ctx, node, &pkt);
                    }
                } else {
                    self.forward_data(ctx, node, pkt, class);
                }
            }
            Payload::Control { msg, dst } => {
                let (msg, dst) = (*msg, *dst);
                if dst == node {
                    self.control_arrived(ctx, node, msg);
                } else {
                    // Relay toward the final destination over the low radio.
                    if let Some(next) = self.shared.low_routes.next_hop(node, dst) {
                        self.enqueue_frame(
                            ctx,
                            node,
                            Class::Low,
                            next,
                            HandshakeMsg::WIRE_BYTES,
                            Payload::Control { msg, dst },
                        );
                    }
                }
            }
            Payload::Burst {
                burst,
                index,
                count,
                packets,
            } => {
                let (burst, index, count) = (*burst, *index, *count);
                // The one place the shared burst is actually consumed:
                // clone the packets here, at the receiving node, instead
                // of once per hearing shard in the fan-out.
                let packets = Vec::clone(packets);
                let mut actions = Vec::new();
                if let Some(rx) = self.node_mut(node).bcp_rx.as_mut() {
                    rx.on_burst_frame(now, burst, index, count, packets, &mut actions);
                }
                self.receiver_actions(ctx, node, actions);
            }
        }
    }

    fn control_arrived(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId, msg: HandshakeMsg) {
        let now = ctx.now();
        match msg {
            HandshakeMsg::WakeUp { burst, burst_bytes } => {
                let free = if node == self.scen.sink {
                    usize::MAX / 4
                } else {
                    self.node(node)
                        .bcp_tx
                        .as_ref()
                        .map(|t| t.free_bytes())
                        .unwrap_or(0)
                };
                let from = burst.initiator();
                let mut actions = Vec::new();
                if let Some(rx) = self.node_mut(node).bcp_rx.as_mut() {
                    rx.on_wakeup(now, from, burst, burst_bytes, free, &mut actions);
                }
                self.receiver_actions(ctx, node, actions);
            }
            HandshakeMsg::WakeUpAck {
                burst,
                granted_bytes,
            } => {
                let mut actions = Vec::new();
                if let Some(tx) = self.node_mut(node).bcp_tx.as_mut() {
                    tx.on_wakeup_ack(now, burst, granted_bytes, &mut actions);
                }
                self.sender_actions(ctx, node, actions);
            }
        }
    }

    /// Counts a copy's arrival at its destination. Returns `false` for a
    /// duplicate (possible for broadcast copies when route repair
    /// re-parents a relay mid-flight) — duplicates are dropped silently
    /// and never re-forwarded.
    fn deliver_copy(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        _node: NodeId,
        pkt: &bcp_core::msg::AppPacket,
        now: bcp_sim::time::SimTime,
    ) -> bool {
        if self.is_broadcast_flood(pkt) {
            let already = matches!(
                self.fates.get(&crate::shard::fate_key(pkt)),
                Some(m) if m.fate == Fate::Delivered
            );
            if already {
                return false;
            }
        }
        let alive_prefix = !self.shared.death_seen;
        self.metrics.on_delivered(pkt, now, alive_prefix);
        let key = ctx.current_key();
        self.fate_delivered(pkt, key);
        self.trace_with(key, || TraceEvent::PktDeliver {
            node: pkt.dest.0,
            pkt: pkt.id.0,
            delay_ns: now.saturating_duration_since(pkt.created).as_nanos(),
        });
        true
    }

    fn tx_outcome(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        class: Class,
        ok: bool,
        tag: u64,
    ) {
        let Some(payload) = self.payloads.remove(&tag) else {
            return;
        };
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::AckOutcome {
            node: node.0,
            class: trace_class(class),
            ok,
        });
        match payload {
            Payload::SensorData(pkt) => {
                if !ok {
                    self.fate_lost(&pkt, Fate::LostMac, key);
                    self.trace_with(key, || TraceEvent::PktDrop {
                        node: node.0,
                        pkt: pkt.id.0,
                        reason: TraceDrop::MacFailure,
                    });
                }
            }
            Payload::Control { .. } => {
                // Handshake losses are handled by BCP's own timers.
            }
            Payload::Burst { burst, .. } => {
                let mut actions = Vec::new();
                if let Some(tx) = self.node_mut(node).bcp_tx.as_mut() {
                    tx.on_frame_outcome(ctx.now(), burst, ok, &mut actions);
                }
                self.sender_actions(ctx, node, actions);
            }
        }
    }

    pub(crate) fn enqueue_frame(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        class: Class,
        to: NodeId,
        bytes: usize,
        payload: Payload,
    ) {
        // A dozing LPL low radio wakes before anything is queued on it
        // (doze resume is instant; the MAC would otherwise StartTx on a
        // sleeping radio). In the vanishing case where the resume's power
        // sync kills the node, the packet dies with it.
        if !self.lpl_wake_for_tx(ctx, node, class) {
            return;
        }
        // Tags are node-scoped (like packet and transmission ids) so the
        // payload table keys are identical for every shard count.
        let tag = {
            let n = self.node_mut(node);
            let tag = crate::events::node_scoped_id(node, n.tag_seq);
            n.tag_seq += 1;
            tag
        };
        self.payloads.insert(tag, payload);
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::MacContend {
            node: node.0,
            class: trace_class(class),
            bytes: bytes as u32,
        });
        let dst = self.mac_addr_of(to, class);
        let frame = self
            .node_mut(node)
            .mac_mut(class)
            .make_data(dst, bytes, tag);
        self.mac_event(ctx, node, class, MacEvent::Enqueue(frame), None);
    }

    // ------------------------------------------------------------------
    // BCP binding
    // ------------------------------------------------------------------

    pub(crate) fn sender_actions(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        actions: Vec<SenderAction>,
    ) {
        for a in actions {
            match a {
                SenderAction::SendWakeUp {
                    to,
                    burst,
                    burst_bytes,
                } => {
                    let msg = HandshakeMsg::WakeUp { burst, burst_bytes };
                    self.send_control(ctx, node, to, msg);
                }
                SenderAction::ArmAckTimer { burst } => {
                    let delay = self.scen.bcp.wakeup_ack_timeout;
                    let id = ctx.after(delay, Ev::BcpAckTimer { node, burst });
                    if let Some(old) = self.ack_timers.insert((node.0, burst.0), id) {
                        ctx.cancel(old);
                    }
                }
                SenderAction::CancelAckTimer { burst } => {
                    if let Some(id) = self.ack_timers.remove(&(node.0, burst.0)) {
                        ctx.cancel(id);
                    }
                }
                SenderAction::WakeHighRadio { burst } => {
                    self.acquire_high(ctx, node, Some(burst));
                }
                SenderAction::SendBurstFrame {
                    to,
                    burst,
                    index,
                    count,
                    packets,
                } => {
                    let bytes = bcp_core::frag::total_bytes(&packets);
                    self.enqueue_frame(
                        ctx,
                        node,
                        Class::High,
                        to,
                        bytes,
                        Payload::Burst {
                            burst,
                            index,
                            count,
                            packets: std::sync::Arc::new(packets),
                        },
                    );
                }
                SenderAction::SendLowData { to: _, packets } => {
                    // Delay-bound fallback: these packets travel hop-by-hop
                    // over the low radio from here on.
                    for pkt in packets {
                        self.forward_data(ctx, node, pkt, Class::Low);
                    }
                }
                SenderAction::ReleaseHighRadio { .. } => self.release_high(ctx, node),
                SenderAction::PacketsDropped { packets, reason } => {
                    let (fate, tr) = match reason {
                        DropReason::BufferOverflow => (Fate::LostBuffer, TraceDrop::BufferOverflow),
                        DropReason::MacFailure => (Fate::LostMac, TraceDrop::MacFailure),
                    };
                    let key = ctx.current_key();
                    for p in &packets {
                        self.fate_lost(p, fate, key);
                        self.trace_with(key, || TraceEvent::PktDrop {
                            node: node.0,
                            pkt: p.id.0,
                            reason: tr,
                        });
                    }
                }
                SenderAction::SessionDone { .. } => {}
            }
        }
    }

    pub(crate) fn receiver_actions(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        actions: Vec<ReceiverAction>,
    ) {
        for a in actions {
            match a {
                ReceiverAction::WakeHighRadio { .. } => self.acquire_high(ctx, node, None),
                ReceiverAction::SendWakeUpAck {
                    to,
                    burst,
                    granted_bytes,
                } => {
                    let msg = HandshakeMsg::WakeUpAck {
                        burst,
                        granted_bytes,
                    };
                    self.send_control(ctx, node, to, msg);
                }
                ReceiverAction::ArmDataTimer { burst } => {
                    let delay = self.scen.bcp.receiver_data_timeout;
                    let id = ctx.after(delay, Ev::BcpDataTimer { node, burst });
                    if let Some(old) = self.data_timers.insert((node.0, burst.0), id) {
                        ctx.cancel(old);
                    }
                }
                ReceiverAction::CancelDataTimer { burst } => {
                    if let Some(id) = self.data_timers.remove(&(node.0, burst.0)) {
                        ctx.cancel(id);
                    }
                }
                ReceiverAction::ReleaseHighRadio { .. } => self.release_high(ctx, node),
                ReceiverAction::DeliverPackets { from: _, packets } => {
                    let now = ctx.now();
                    for pkt in packets {
                        if pkt.dest == node {
                            if !self.deliver_copy(ctx, node, &pkt, now) {
                                continue;
                            }
                            if self.is_broadcast_flood(&pkt) {
                                self.broadcast_relay(ctx, node, &pkt);
                            }
                        } else {
                            self.bcp_data(ctx, node, pkt);
                        }
                    }
                }
            }
        }
    }

    fn send_control(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        node: NodeId,
        dst: NodeId,
        msg: HandshakeMsg,
    ) {
        if let Some(next) = self.shared.low_routes.next_hop(node, dst) {
            self.enqueue_frame(
                ctx,
                node,
                Class::Low,
                next,
                HandshakeMsg::WIRE_BYTES,
                Payload::Control { msg, dst },
            );
        }
    }

    // ------------------------------------------------------------------
    // High-radio power management
    // ------------------------------------------------------------------

    fn acquire_high(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId, ready_burst: Option<BurstId>) {
        let now = ctx.now();
        if let Some(id) = self.linger.remove(&node.0) {
            ctx.cancel(id);
        }
        let state = {
            let n = self.node_mut(node);
            n.high_refs += 1;
            n.radio_mut(Class::High).state()
        };
        match state {
            RadioState::Off => {
                self.metrics.radio_wakeups += 1;
                let d = self.node_mut(node).radio_mut(Class::High).begin_wakeup(now);
                // The wake-up pulse is a lump charge: drain it now.
                self.power_touch(ctx, node);
                ctx.after(d, Ev::RadioWakeDone { node });
                let key = ctx.current_key();
                self.trace_with(key, || TraceEvent::RadioState {
                    node: node.0,
                    class: TraceClass::High,
                    state: TraceRadioState::Waking,
                });
                if let Some(b) = ready_burst {
                    self.node_mut(node).wake_pending.push(b);
                }
            }
            RadioState::WakingUp => {
                if let Some(b) = ready_burst {
                    self.node_mut(node).wake_pending.push(b);
                }
            }
            _ => {
                // Already on: a sender session can proceed immediately.
                if let Some(b) = ready_burst {
                    let mut actions = Vec::new();
                    if let Some(tx) = self.node_mut(node).bcp_tx.as_mut() {
                        tx.on_high_radio_ready(now, b, &mut actions);
                    }
                    self.sender_actions(ctx, node, actions);
                }
            }
        }
    }

    fn release_high(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let refs = {
            let n = self.node_mut(node);
            assert!(n.high_refs > 0, "{node}: release without acquire");
            n.high_refs -= 1;
            n.high_refs
        };
        if refs == 0 {
            // Stay on briefly: the MAC may still owe a link ACK, and in
            // shortcut-learning mode we listen for our packets being
            // forwarded.
            let mut delay = self.scen.off_linger;
            if let HighRoute::LowParents {
                shortcuts: true,
                listen,
            } = self.scen.high_route
            {
                if listen > delay {
                    delay = listen;
                }
                let until = ctx.now() + listen;
                self.node_mut(node).listen_until = until;
            }
            let id = ctx.after(delay, Ev::HighIdleOff { node });
            if let Some(old) = self.linger.insert(node.0, id) {
                ctx.cancel(old);
            }
        }
    }

    pub(crate) fn radio_wake_done(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let now = ctx.now();
        self.node_mut(node)
            .radio_mut(Class::High)
            .complete_wakeup(now);
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::RadioState {
            node: node.0,
            class: TraceClass::High,
            state: TraceRadioState::Awake,
        });
        // The high radio now idles expensively: re-project depletion (this
        // can kill the node on the spot if the battery is that close).
        self.power_touch(ctx, node);
        if !self.node(node).is_alive() {
            return;
        }
        // Resynchronize the MAC's carrier view with the channel: the MAC
        // may hold a stale busy flag from before the radio powered down
        // (the matching down-edge fell on deaf ears), which would pin any
        // queued frame in WaitChannel until an unrelated transmission
        // happens to clear it — with the radio burning idle power all
        // along. `on_carrier` is idempotent, so asserting either edge is
        // safe.
        let busy = self.chans[Class::High.index()].carrier_busy(node);
        self.mac_event(ctx, node, Class::High, MacEvent::Carrier(busy), None);
        let pending = core::mem::take(&mut self.node_mut(node).wake_pending);
        for burst in pending {
            let mut actions = Vec::new();
            if let Some(tx) = self.node_mut(node).bcp_tx.as_mut() {
                tx.on_high_radio_ready(now, burst, &mut actions);
            }
            self.sender_actions(ctx, node, actions);
        }
    }

    pub(crate) fn high_idle_off(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        self.linger.remove(&node.0);
        let now = ctx.now();
        let turned_off = {
            let n = self.node_mut(node);
            if n.high_refs > 0 {
                return; // re-acquired meanwhile
            }
            // The MAC may still owe a link ACK (SIFS-delayed) or hold queued
            // frames; powering down now would transmit from a dead radio.
            let mac_busy = !n
                .high_mac
                .as_ref()
                .map(|m| m.is_quiescent())
                .unwrap_or(true);
            let radio = n.radio_mut(Class::High);
            match radio.state() {
                RadioState::Idle if !mac_busy => {
                    radio.turn_off(now);
                    true
                }
                RadioState::Off => false,
                _ => {
                    // Busy (rx/tx/waking/ack owed): try again shortly.
                    let delay = self.scen.off_linger;
                    let id = ctx.after(delay, Ev::HighIdleOff { node });
                    if let Some(old) = self.linger.insert(node.0, id) {
                        ctx.cancel(old);
                    }
                    false
                }
            }
        };
        if turned_off {
            let key = ctx.current_key();
            self.trace_with(key, || TraceEvent::RadioState {
                node: node.0,
                class: TraceClass::High,
                state: TraceRadioState::Off,
            });
            self.power_touch(ctx, node);
        }
    }

    // ------------------------------------------------------------------
    // Low-power listening: the duty-cycled low radio
    // ------------------------------------------------------------------

    /// The LPL timing `(wake_interval, sample)`, when duty cycling is on.
    fn lpl(&self) -> Option<(bcp_sim::time::SimDuration, bcp_sim::time::SimDuration)> {
        match self.scen.low_sleep {
            SleepSchedule::AlwaysOn => None,
            SleepSchedule::Lpl {
                wake_interval,
                sample,
                ..
            } => Some((wake_interval, sample)),
        }
    }

    /// Periodic LPL channel sample: wake the dozing low radio, sniff the
    /// carrier, and either latch onto a frame still in its wake-up
    /// preamble or schedule the doze that ends this sample. Always
    /// re-arms the next sample — the chain is strictly node-local, so it
    /// never constrains the conservative lookahead.
    pub(crate) fn wake_sample(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let Some((interval, sample)) = self.lpl() else {
            return;
        };
        // Re-arm first: if the resume's power sync kills the node below,
        // the kill cancels this timer along with every other one.
        let id = ctx.after(interval, Ev::WakeSample { node });
        if let Some(old) = self.lpl_timers.insert(node.0, id) {
            ctx.cancel(old);
        }
        match self.node(node).low_radio.state() {
            RadioState::Sleeping => {
                if !self.lpl_resume(ctx, node) {
                    return; // the wake's power sync killed the node
                }
                // One carrier read serves both the trace and the doze
                // decision (`carrier_busy` is a pure query).
                let busy = self.chans[Class::Low.index()].carrier_busy(node);
                let key = ctx.current_key();
                self.trace_with(key, || TraceEvent::LplSample {
                    node: node.0,
                    heard: busy,
                });
                if !busy {
                    ctx.after(sample, Ev::Sleep { node });
                }
                // Else: stay up until the carrier clears (the
                // false-wakeup cost LPL pays); the next cycle retries.
            }
            RadioState::Idle => {
                // Traffic kept the radio up past its doze: give it
                // another chance to sleep once this sample width passes.
                ctx.after(sample, Ev::Sleep { node });
            }
            // Transmitting/receiving (or dead: Off): the next sample
            // re-evaluates.
            _ => {}
        }
    }

    /// The doze-resume protocol, shared by the periodic wake sample and
    /// the wake-for-transmit path: resume the radio, sync the battery
    /// (which may kill the node on the spot), resync the MAC's carrier
    /// view (edges during doze fell on deaf ears — same fix as the high
    /// radio's wake-up path), and try to latch onto a frame still in its
    /// wake-up preamble. Returns `false` when the node died.
    fn lpl_resume(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) -> bool {
        let now = ctx.now();
        self.node_mut(node).low_radio.resume(now);
        self.power_touch(ctx, node);
        if !self.node(node).is_alive() {
            return false;
        }
        let busy = self.chans[Class::Low.index()].carrier_busy(node);
        self.mac_event(ctx, node, Class::Low, MacEvent::Carrier(busy), None);
        if busy {
            self.lpl_lock_preamble(ctx, node);
        }
        true
    }

    /// End of a channel sample: doze again, unless the radio is busy,
    /// the MAC owes work, or a foreign transmission is audible.
    pub(crate) fn lpl_sleep(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        if self.scen.low_sleep.is_always_on() {
            return;
        }
        let n = self.node(node);
        if n.low_radio.state() != RadioState::Idle
            || !n.low_mac.is_quiescent()
            || self.chans[Class::Low.index()].carrier_busy(node)
        {
            return; // stay up; the next wake cycle retries
        }
        self.node_mut(node).low_radio.sleep(ctx.now());
        let key = ctx.current_key();
        self.trace_with(key, || TraceEvent::RadioState {
            node: node.0,
            class: TraceClass::Low,
            state: TraceRadioState::Dozing,
        });
        self.power_touch(ctx, node);
    }

    /// A just-woken (idle, unlocked) LPL receiver tries to latch onto the
    /// transmission on the air: decodable exactly when a single
    /// transmission is audible, it is a data frame (ACKs are never
    /// stretched, so they are absent from the audible table), and its
    /// body has not started yet — the wake-up preamble exists precisely
    /// so samples land inside it.
    fn lpl_lock_preamble(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId) {
        let now = ctx.now();
        let ci = Class::Low.index();
        if self.chans[ci].locked_rx(node).is_some()
            || self.node(node).low_radio.state() != RadioState::Idle
            // The count covers untracked transmissions too (an ACK
            // overlapping this preamble): any overlap means garbage.
            || self.chans[ci].carrier_count(node) != 1
        {
            return;
        }
        let Some(audible) = self.lpl_audible.get(&node.0) else {
            return;
        };
        let &[(tx, body_start)] = audible.as_slice() else {
            return; // overlapping frames: garbage, just carrier-sense it
        };
        if now < body_start {
            // Under a received-power profile audibility is not enough to
            // latch on: the preamble must also decode — at or above the
            // sensitivity and clear of whatever else is on the air (the
            // carrier count above already rules out audible overlap, but
            // a shadowed link can be audible yet permanently too weak).
            if let Some(p) = &self.phys[ci] {
                let decodable = self.chans[ci]
                    .audible_power(node, tx)
                    .is_some_and(|mw| p.decodes(mw, self.chans[ci].interference_mw(node, tx)));
                if !decodable {
                    return;
                }
            }
            self.chans[ci].lock_rx(node, tx);
            self.node_mut(node).low_radio.start_rx(now);
            self.power_touch(ctx, node);
            let key = ctx.current_key();
            self.trace_with(key, || TraceEvent::LplLock {
                node: node.0,
                from: tx.sender().0,
            });
        }
    }

    /// Wakes a dozing low radio so a frame can be queued on it. Returns
    /// `false` when the node died during the wake's power sync (callers
    /// must then drop the frame: the node is a corpse).
    fn lpl_wake_for_tx(&mut self, ctx: &mut ShardCtx<'_>, node: NodeId, class: Class) -> bool {
        if class != Class::Low
            || self.scen.low_sleep.is_always_on()
            || self.node(node).low_radio.state() != RadioState::Sleeping
        {
            return true;
        }
        self.lpl_resume(ctx, node)
    }
}
