//! Run-level metrics: the paper's three performance measures plus
//! diagnostics.
//!
//! Section 4: "(1) Goodput, which is the ratio of the number of data bits
//! (excluding overhead) received by the sink to the number of bits
//! transmitted by the senders. (2) Normalized energy (J/bit), the ratio of
//! the total energy consumed by all nodes in the network to the number of
//! bits received by the sink. (3) Delay (s), the difference in time a
//! packet is generated at the sender and received by the sink, including
//! buffering delays."

use bcp_core::msg::AppPacket;
use bcp_net::addr::NodeId;
use bcp_radio::units::Energy;
use bcp_sim::stats::Welford;
use bcp_sim::time::SimTime;
use std::collections::BTreeMap;

/// Per-flow delivery accounting: one entry per `(origin, destination)`
/// pair that generated or received data.
///
/// A flow's deliveries all happen at its destination — on exactly one
/// shard — so the delay stream below is accumulated by a single shard in
/// event order and the cross-shard [`Metrics::merge`] only ever combines
/// a populated stream with empty ones. That is what keeps every derived
/// quantity bit-identical for any shard count, and makes the merge
/// commutative (any permutation of per-shard metrics folds to the same
/// result).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets generated for this flow. Under a broadcast pattern the
    /// source generates one *copy* per intended recipient, so each
    /// `(source, recipient)` flow counts its own.
    pub generated_packets: u64,
    /// Payload bits likewise.
    pub generated_bits: u64,
    /// Packets this flow's destination received.
    pub delivered_packets: u64,
    /// Payload bits likewise.
    pub delivered_bits: u64,
    /// Per-packet delays (generation → this destination).
    pub delay: Welford,
}

impl FlowStats {
    /// Folds another shard's view of the same flow into this one.
    pub fn merge(&mut self, other: &FlowStats) {
        self.generated_packets += other.generated_packets;
        self.generated_bits += other.generated_bits;
        self.delivered_packets += other.delivered_packets;
        self.delivered_bits += other.delivered_bits;
        self.delay.merge(&other.delay);
    }

    /// Fraction of this flow's generated packets that arrived.
    pub fn reach(&self) -> f64 {
        if self.generated_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.generated_packets as f64
        }
    }
}

/// Counters accumulated during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Application packets generated at senders (for broadcast patterns:
    /// per-recipient copies, so goodput stays a `[0, 1]` reach fraction).
    pub generated_packets: u64,
    /// Application payload bits generated.
    pub generated_bits: u64,
    /// Packets received at their flow's destination.
    pub delivered_packets: u64,
    /// Payload bits received at their flow's destination.
    pub delivered_bits: u64,
    /// Per-flow accounting, keyed `(origin, destination)`. The global
    /// delay statistics derive from these streams (merged in key order),
    /// never from a shard-order fold — see [`FlowStats`].
    pub flows: BTreeMap<(NodeId, NodeId), FlowStats>,
    /// Packets lost to BCP buffer overflow.
    pub drops_buffer: u64,
    /// Packets lost to MAC retry exhaustion or MAC queue overflow. A MAC
    /// "failure" whose frame actually arrived (lost ACK) is *not* counted:
    /// fates are reconciled per packet at the end of the run.
    pub drops_mac: u64,
    /// Packets still buffered or in flight when the run ended. Under a
    /// broadcast pattern this also covers copies stranded by an upstream
    /// tree-edge loss (only the failed edge's own copy is marked as a
    /// drop; the subtree behind it was simply never served).
    pub residual_packets: u64,
    /// Wake-up handshakes begun.
    pub handshakes: u64,
    /// High-radio power-up transitions.
    pub radio_wakeups: u64,
    /// Collisions observed at receivers (both classes).
    pub collisions: u64,
    /// Nodes whose battery emptied during the run.
    pub node_deaths: u64,
    /// When the first node died, if any did.
    pub first_death: Option<SimTime>,
    /// When the sink first became unreachable from some data source: a
    /// sender died, a sender's every route crossed corpses, or the sink
    /// itself died. `None` while every sender lives and routes.
    pub partition: Option<SimTime>,
    /// Sink deliveries that happened before the first death — the paper's
    /// goodput restricted to the all-nodes-alive prefix of the run.
    pub delivered_before_first_death: u64,
    /// Packets generated before the first death (the matching denominator).
    pub generated_before_first_death: u64,
}

impl Metrics {
    /// Records a generated packet. `alive_prefix` says whether the whole
    /// network is still intact (no death announced yet) — in the sharded
    /// world that flag lives in the coordinator-published snapshot, not
    /// in any one shard's counters.
    pub fn on_generated(&mut self, pkt: &AppPacket, alive_prefix: bool) {
        let bits = pkt.bytes as u64 * 8;
        self.generated_packets += 1;
        self.generated_bits += bits;
        if alive_prefix {
            self.generated_before_first_death += 1;
        }
        let f = self.flows.entry((pkt.origin, pkt.dest)).or_default();
        f.generated_packets += 1;
        f.generated_bits += bits;
    }

    /// Records a delivery at the flow's destination at time `now` (see
    /// [`on_generated`](Self::on_generated) for `alive_prefix`).
    pub fn on_delivered(&mut self, pkt: &AppPacket, now: SimTime, alive_prefix: bool) {
        let bits = pkt.bytes as u64 * 8;
        self.delivered_packets += 1;
        self.delivered_bits += bits;
        if alive_prefix {
            self.delivered_before_first_death += 1;
        }
        let f = self.flows.entry((pkt.origin, pkt.dest)).or_default();
        f.delivered_packets += 1;
        f.delivered_bits += bits;
        f.delay
            .push(now.saturating_duration_since(pkt.created).as_secs_f64());
    }

    /// Records a node death at time `now`.
    pub fn on_node_died(&mut self, now: SimTime) {
        self.node_deaths += 1;
        if self.first_death.is_none() {
            self.first_death = Some(now);
        }
    }

    /// Folds another shard's counters into this one. A flow's deliveries
    /// (and its delay stream) happen on exactly one shard — the
    /// destination's — so the per-flow Welford merge never mixes two
    /// non-trivial streams; everything else is a plain sum or an
    /// earliest-instant fold. The whole merge is therefore commutative:
    /// folding per-shard metrics in any permutation yields the same
    /// result as the single-shard run.
    pub fn merge(&mut self, other: &Metrics) {
        self.generated_packets += other.generated_packets;
        self.generated_bits += other.generated_bits;
        self.delivered_packets += other.delivered_packets;
        self.delivered_bits += other.delivered_bits;
        for (key, f) in &other.flows {
            self.flows.entry(*key).or_default().merge(f);
        }
        self.drops_buffer += other.drops_buffer;
        self.drops_mac += other.drops_mac;
        self.residual_packets += other.residual_packets;
        self.handshakes += other.handshakes;
        self.radio_wakeups += other.radio_wakeups;
        self.collisions += other.collisions;
        self.node_deaths += other.node_deaths;
        self.first_death = match (self.first_death, other.first_death) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.partition = match (self.partition, other.partition) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.delivered_before_first_death += other.delivered_before_first_death;
        self.generated_before_first_death += other.generated_before_first_death;
    }

    /// Records the first sink disconnection at time `now` (later calls are
    /// ignored — a network partitions once).
    pub fn on_partition(&mut self, now: SimTime) {
        if self.partition.is_none() {
            self.partition = Some(now);
        }
    }

    /// Goodput: delivered bits / generated bits (0 when nothing generated).
    pub fn goodput(&self) -> f64 {
        if self.generated_bits == 0 {
            0.0
        } else {
            self.delivered_bits as f64 / self.generated_bits as f64
        }
    }

    /// The whole run's delay statistics: every flow's stream merged in
    /// `(origin, destination)` key order. The fold order is a property of
    /// the flow set, never of the sharding, so the result is bit-identical
    /// for any shard count.
    pub fn delay(&self) -> Welford {
        let mut w = Welford::new();
        for f in self.flows.values() {
            w.merge(&f.delay);
        }
        w
    }

    /// Mean per-packet delay in seconds (0 when nothing delivered).
    pub fn mean_delay_s(&self) -> f64 {
        self.delay().mean()
    }

    /// Packet-level reach: delivered / generated packets (0 when nothing
    /// generated). For a broadcast run — where generation counts one copy
    /// per intended recipient — this is the mean fraction of live nodes
    /// each disseminated packet arrived at.
    pub fn packet_reach(&self) -> f64 {
        if self.generated_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.generated_packets as f64
        }
    }
}

/// Engine-level diagnostics for one run: how the conservative engine
/// spent its time, not what the simulated network did.
///
/// The virtual-time fields (`windows`, `serial_steps`, `mean_window_s`,
/// `per_shard_events`, `per_shard_max_queue`) are deterministic for a
/// given shard count and sampling interval. The wall-clock fields
/// (`wall_s`, `barrier_wait_s`, `events_per_sec`) are **not**
/// reproducible and must be excluded from bit-identity comparisons.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Shard count the run was partitioned into.
    pub shards: usize,
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Conservative windows drained (several per synchronization round
    /// when the engine batches sub-windows).
    pub windows: u64,
    /// Cross-shard synchronization points taken (round releases plus
    /// batched sub-window exchanges). `barriers - windows` is the round
    /// count; a healthy batched run keeps it far below `windows`.
    pub barriers: u64,
    /// Serial coordinator steps taken for global events.
    pub serial_steps: u64,
    /// Mean conservative-window width in simulated seconds (0 when no
    /// window ran).
    pub mean_window_s: f64,
    /// Coordinator wall-clock seconds spent waiting at window barriers
    /// (zero on the single-threaded path).
    pub barrier_wait_s: f64,
    /// Wall-clock seconds inside the engine.
    pub wall_s: f64,
    /// Logical events per wall-clock second (0 when the run took no
    /// measurable time).
    pub events_per_sec: f64,
    /// Events processed per shard, in shard-index order (counts the
    /// per-shard halves of cross-shard fan-outs, so the sum exceeds the
    /// logical `events` figure).
    pub per_shard_events: Vec<u64>,
    /// Maximum pending live-event count observed per shard at window
    /// boundaries, in shard-index order.
    pub per_shard_max_queue: Vec<usize>,
}

/// One window of the per-run time series: **deltas** over the sampling
/// interval ending at `t_s` (cumulative totals are the running sum, and
/// the deltas across a whole run telescope exactly to the end-of-run
/// [`RunStats`] globals). Produced by
/// [`RunOptions::series_every`](crate::world::RunOptions).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSample {
    /// The sample instant (the end of this window), in seconds.
    pub t_s: f64,
    /// Packets generated during the window.
    pub generated_packets: u64,
    /// Payload bits generated during the window.
    pub generated_bits: u64,
    /// Packets delivered during the window.
    pub delivered_packets: u64,
    /// Payload bits delivered during the window.
    pub delivered_bits: u64,
    /// Model-accounted energy spent during the window (J), same
    /// accounting as [`RunStats::energy_j`].
    pub energy_j: f64,
    /// Low-radio idle-listening energy spent during the window (J).
    pub energy_low_idle_j: f64,
    /// Low-radio doze energy spent during the window (J).
    pub energy_low_sleep_j: f64,
    /// Nodes alive at the sample instant.
    pub live_nodes: u64,
    /// Pending live events per shard at the sample instant, in
    /// shard-index order (all zeros for samples emitted after the event
    /// queues drained).
    pub queue_depth: Vec<usize>,
}

impl SeriesSample {
    /// Serialises the sample as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        use bcp_sim::json::num;
        let depths = self
            .queue_depth
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"t_s\":{},\"generated_packets\":{},\"generated_bits\":{},\
             \"delivered_packets\":{},\"delivered_bits\":{},\"energy_j\":{},\
             \"energy_low_idle_j\":{},\"energy_low_sleep_j\":{},\
             \"live_nodes\":{},\"queue_depth\":[{}]}}",
            num(self.t_s),
            self.generated_packets,
            self.generated_bits,
            self.delivered_packets,
            self.delivered_bits,
            num(self.energy_j),
            num(self.energy_low_idle_j),
            num(self.energy_low_sleep_j),
            self.live_nodes,
            depths,
        )
    }
}

/// The finished summary of one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Goodput ∈ [0, 1].
    pub goodput: f64,
    /// Total network energy under the model's accounting (J).
    pub energy_j: f64,
    /// Normalized energy in J per **Kbit** delivered (the unit of the
    /// paper's Figs. 6, 7, 9, 10); ∞ when nothing was delivered.
    pub j_per_kbit: f64,
    /// Mean packet delay (s).
    pub mean_delay_s: f64,
    /// For the sensor model: energy under the *header-overhearing* variant
    /// ("Sensor-header"), J. Equal to `energy_j` for other models.
    pub energy_header_j: f64,
    /// `energy_header_j` normalized, J/Kbit.
    pub j_per_kbit_header: f64,
    /// Energy with *full-frame* overhearing charged on the low radio (an
    /// ablation beyond the paper's header-only variant), J.
    pub energy_overhear_full_j: f64,
    /// `energy_overhear_full_j` normalized, J/Kbit.
    pub j_per_kbit_overhear_full: f64,
    /// Raw counters.
    pub metrics: Metrics,
    /// Events processed (diagnostics).
    pub events: u64,
    /// Seconds until the first node death; `None` when every node outlived
    /// the run (always the case without batteries).
    pub time_to_first_death_s: Option<f64>,
    /// Seconds until the sink first became unreachable from some data
    /// source — a sender (or the sink) died, or a sender's every route
    /// crossed corpses; `None` when all senders stayed alive and
    /// sink-connected.
    pub time_to_partition_s: Option<f64>,
    /// Sink deliveries before the first death (= `delivered_packets` when
    /// nothing died).
    pub delivered_before_first_death: u64,
    /// Network-wide energy the low radios spent *listening to nothing*
    /// (the `Idle` bucket, J). This is the idle tax low-power listening
    /// exists to shrink; always-on runs put the whole listening floor
    /// here.
    pub energy_low_idle_j: f64,
    /// Network-wide energy the low radios spent dozing (the `Sleep`
    /// bucket, J); the `p_sleep` floor the idle tax collapses toward as
    /// the LPL duty cycle shrinks.
    pub energy_low_sleep_j: f64,
    /// For broadcast runs: the fraction of per-recipient copies that
    /// arrived (`delivered / generated` packets — the mean share of live
    /// nodes each disseminated packet reached). `None` for convergecast
    /// and gossip runs.
    pub broadcast_reach: Option<f64>,
    /// Per-node supply/meter accounting (one entry per node, in id order).
    pub per_node: Vec<NodePowerReport>,
    /// Engine-level diagnostics (window counts, wall clock, queue
    /// depths). Deliberately excluded from bit-identity comparisons: its
    /// wall-clock fields vary run to run.
    pub engine: EngineStats,
}

/// One node's energy bookkeeping at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePowerReport {
    /// The node.
    pub node: NodeId,
    /// Total energy metered by the node's radio ledgers (J).
    pub ledger_j: f64,
    /// Energy the battery actually supplied (J); equals `ledger_j` up to
    /// depletion clamping. `None` for mains-powered nodes.
    pub drawn_j: Option<f64>,
    /// Usable capacity the node started with (J); `None` for mains power.
    pub capacity_j: Option<f64>,
    /// Charge left (J); `None` for mains power.
    pub residual_j: Option<f64>,
    /// When the node died, in seconds; `None` if it survived the run.
    pub died_at_s: Option<f64>,
}

impl RunStats {
    /// Builds the summary given the model-accounted energies.
    pub fn new(metrics: Metrics, energy: Energy, energy_header: Energy, events: u64) -> Self {
        Self::with_overhear_full(metrics, energy, energy_header, energy_header, events)
    }

    /// Like [`new`](Self::new) with an explicit full-overhearing total.
    pub fn with_overhear_full(
        metrics: Metrics,
        energy: Energy,
        energy_header: Energy,
        energy_overhear_full: Energy,
        events: u64,
    ) -> Self {
        let kbits = metrics.delivered_bits as f64 / 1000.0;
        let norm = |e: Energy| {
            if kbits == 0.0 {
                f64::INFINITY
            } else {
                e.as_joules() / kbits
            }
        };
        RunStats {
            goodput: metrics.goodput(),
            energy_j: energy.as_joules(),
            j_per_kbit: norm(energy),
            mean_delay_s: metrics.mean_delay_s(),
            energy_header_j: energy_header.as_joules(),
            j_per_kbit_header: norm(energy_header),
            energy_overhear_full_j: energy_overhear_full.as_joules(),
            j_per_kbit_overhear_full: norm(energy_overhear_full),
            events,
            time_to_first_death_s: metrics.first_death.map(|t| t.as_secs_f64()),
            time_to_partition_s: metrics.partition.map(|t| t.as_secs_f64()),
            delivered_before_first_death: metrics.delivered_before_first_death,
            energy_low_idle_j: 0.0,
            energy_low_sleep_j: 0.0,
            broadcast_reach: None,
            per_node: Vec::new(),
            engine: EngineStats::default(),
            metrics,
        }
    }

    /// Attaches the engine-level diagnostics (builder style).
    pub fn with_engine(mut self, engine: EngineStats) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches the per-node supply accounting (builder style).
    pub fn with_per_node(mut self, per_node: Vec<NodePowerReport>) -> Self {
        self.per_node = per_node;
        self
    }

    /// Marks the run as a broadcast dissemination, recording its reach
    /// fraction (builder style).
    pub fn with_broadcast_reach(mut self, reach: f64) -> Self {
        self.broadcast_reach = Some(reach);
        self
    }

    /// Attaches the low radios' listening-floor breakdown (builder style).
    pub fn with_low_radio_floor(mut self, idle: Energy, sleep: Energy) -> Self {
        self.energy_low_idle_j = idle.as_joules();
        self.energy_low_sleep_j = sleep.as_joules();
        self
    }

    /// Serialises the whole summary as a JSON object (hand-rolled, no
    /// dependencies): the paper's three measures, the lifetime measures,
    /// every raw counter, and the per-node power accounting. Non-finite
    /// values (e.g. `j_per_kbit` of a run that delivered nothing) become
    /// `null`.
    pub fn to_json(&self) -> String {
        use bcp_sim::json::{num, opt_num};
        let m = &self.metrics;
        let per_node = self
            .per_node
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"ledger_j\":{},\"drawn_j\":{},\"capacity_j\":{},\
                     \"residual_j\":{},\"died_at_s\":{}}}",
                    n.node.0,
                    num(n.ledger_j),
                    opt_num(n.drawn_j),
                    opt_num(n.capacity_j),
                    opt_num(n.residual_j),
                    opt_num(n.died_at_s),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let flows = m
            .flows
            .iter()
            .map(|((src, dst), f)| {
                format!(
                    "{{\"src\":{},\"dst\":{},\"generated_packets\":{},\
                     \"delivered_packets\":{},\"delivered_bits\":{},\"mean_delay_s\":{}}}",
                    src.0,
                    dst.0,
                    f.generated_packets,
                    f.delivered_packets,
                    f.delivered_bits,
                    num(f.delay.mean()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let e = &self.engine;
        let ints = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let engine = format!(
            "{{\"shards\":{},\"threads\":{},\"windows\":{},\"barriers\":{},\
             \"serial_steps\":{},\
             \"mean_window_s\":{},\"barrier_wait_s\":{},\"wall_s\":{},\
             \"events_per_sec\":{},\"per_shard_events\":[{}],\
             \"per_shard_max_queue\":[{}]}}",
            e.shards,
            e.threads,
            e.windows,
            e.barriers,
            e.serial_steps,
            num(e.mean_window_s),
            num(e.barrier_wait_s),
            num(e.wall_s),
            num(e.events_per_sec),
            ints(&e.per_shard_events),
            ints(
                &e.per_shard_max_queue
                    .iter()
                    .map(|&d| d as u64)
                    .collect::<Vec<_>>()
            ),
        );
        format!(
            "{{\"goodput\":{},\"energy_j\":{},\"j_per_kbit\":{},\"mean_delay_s\":{},\
             \"energy_header_j\":{},\"j_per_kbit_header\":{},\
             \"energy_overhear_full_j\":{},\"j_per_kbit_overhear_full\":{},\
             \"events\":{},\"engine\":{},\
             \"time_to_first_death_s\":{},\"time_to_partition_s\":{},\
             \"delivered_before_first_death\":{},\
             \"energy_low_idle_j\":{},\"energy_low_sleep_j\":{},\
             \"broadcast_reach\":{},\"metrics\":{{\
             \"generated_packets\":{},\"generated_bits\":{},\"delivered_packets\":{},\
             \"delivered_bits\":{},\"drops_buffer\":{},\"drops_mac\":{},\
             \"residual_packets\":{},\"handshakes\":{},\"radio_wakeups\":{},\
             \"collisions\":{},\"node_deaths\":{}}},\"flows\":[{}],\"per_node\":[{}]}}",
            num(self.goodput),
            num(self.energy_j),
            num(self.j_per_kbit),
            num(self.mean_delay_s),
            num(self.energy_header_j),
            num(self.j_per_kbit_header),
            num(self.energy_overhear_full_j),
            num(self.j_per_kbit_overhear_full),
            self.events,
            engine,
            opt_num(self.time_to_first_death_s),
            opt_num(self.time_to_partition_s),
            self.delivered_before_first_death,
            num(self.energy_low_idle_j),
            num(self.energy_low_sleep_j),
            opt_num(self.broadcast_reach),
            m.generated_packets,
            m.generated_bits,
            m.delivered_packets,
            m.delivered_bits,
            m.drops_buffer,
            m.drops_mac,
            m.residual_packets,
            m.handshakes,
            m.radio_wakeups,
            m.collisions,
            m.node_deaths,
            flows,
            per_node,
        )
    }

    /// Fraction of the packets generated before the first death that also
    /// reached the sink before it — packet goodput restricted to the
    /// all-alive prefix of the run (equals plain packet goodput when
    /// nothing died).
    pub fn goodput_before_first_death(&self) -> f64 {
        if self.metrics.generated_before_first_death == 0 {
            0.0
        } else {
            self.delivered_before_first_death as f64
                / self.metrics.generated_before_first_death as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_net::addr::NodeId;

    fn pkt(seq: u64, created_s: u64) -> AppPacket {
        AppPacket::new(NodeId(1), NodeId(0), seq, SimTime::from_secs(created_s), 32)
    }

    #[test]
    fn goodput_ratio() {
        let mut m = Metrics::default();
        for i in 0..10 {
            m.on_generated(&pkt(i, 0), true);
        }
        for i in 0..4 {
            m.on_delivered(&pkt(i, 0), SimTime::from_secs(5), true);
        }
        assert!((m.goodput() - 0.4).abs() < 1e-12);
        assert_eq!(m.delivered_bits, 4 * 256);
    }

    #[test]
    fn delay_includes_buffering() {
        let mut m = Metrics::default();
        let p = pkt(0, 10);
        m.on_generated(&p, true);
        m.on_delivered(&p, SimTime::from_secs(25), true);
        assert!((m.mean_delay_s() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters_and_instants() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        for i in 0..4 {
            a.on_generated(&pkt(i, 0), true);
        }
        for i in 0..3 {
            b.on_generated(&pkt(100 + i, 0), false);
            b.on_delivered(&pkt(100 + i, 0), SimTime::from_secs(9), false);
        }
        b.on_node_died(SimTime::from_secs(5));
        a.merge(&b);
        assert_eq!(a.generated_packets, 7);
        assert_eq!(a.generated_before_first_death, 4);
        assert_eq!(a.delivered_packets, 3);
        assert_eq!(a.node_deaths, 1);
        assert_eq!(a.first_death, Some(SimTime::from_secs(5)));
        assert!((a.mean_delay_s() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn flow_ledger_sums_to_globals_and_reach() {
        let mut m = Metrics::default();
        // Two flows from different origins; flow (1,0) delivers 2 of 3,
        // flow (2,9) delivers 1 of 1.
        for seq in 0..3 {
            m.on_generated(&pkt(seq, 0), true);
        }
        let other = AppPacket::new(NodeId(2), NodeId(9), 0, SimTime::ZERO, 32);
        m.on_generated(&other, true);
        for seq in 0..2 {
            m.on_delivered(&pkt(seq, 0), SimTime::from_secs(3), true);
        }
        m.on_delivered(&other, SimTime::from_secs(5), true);
        assert_eq!(m.flows.len(), 2);
        let f10 = &m.flows[&(NodeId(1), NodeId(0))];
        assert_eq!(f10.generated_packets, 3);
        assert_eq!(f10.delivered_packets, 2);
        assert!((f10.reach() - 2.0 / 3.0).abs() < 1e-12);
        let sum_gen: u64 = m.flows.values().map(|f| f.generated_packets).sum();
        let sum_del: u64 = m.flows.values().map(|f| f.delivered_packets).sum();
        assert_eq!(sum_gen, m.generated_packets);
        assert_eq!(sum_del, m.delivered_packets);
        // The global delay derives from the flows: 3 samples, mean of
        // {3, 3, 5} seconds.
        assert_eq!(m.delay().count(), 3);
        assert!((m.mean_delay_s() - 11.0 / 3.0).abs() < 1e-12);
        assert!((m.packet_reach() - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn flow_merge_with_empty_side_is_exact() {
        // The sharded world's guarantee: one shard carries a flow's
        // deliveries (delay stream), others only its generation counts —
        // merging in either order is bitwise exact.
        let mut src_shard = Metrics::default();
        let mut dst_shard = Metrics::default();
        for seq in 0..5 {
            src_shard.on_generated(&pkt(seq, 0), true);
            dst_shard.on_delivered(&pkt(seq, 0), SimTime::from_secs(seq + 2), true);
        }
        let mut ab = src_shard.clone();
        ab.merge(&dst_shard);
        let mut ba = dst_shard.clone();
        ba.merge(&src_shard);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.mean_delay_s(), ba.mean_delay_s());
        assert_eq!(
            ab.flows[&(NodeId(1), NodeId(0))].delay,
            dst_shard.flows[&(NodeId(1), NodeId(0))].delay,
            "the populated stream passes through untouched"
        );
    }

    #[test]
    fn runstats_normalization_in_j_per_kbit() {
        let mut m = Metrics::default();
        for i in 0..100 {
            let p = pkt(i, 0);
            m.on_generated(&p, true);
            m.on_delivered(&p, SimTime::from_secs(1), true);
        }
        // 100 × 256 bits = 25.6 Kbit; 2.56 J -> 0.1 J/Kbit.
        let rs = RunStats::new(m, Energy::from_joules(2.56), Energy::from_joules(5.12), 0);
        assert!((rs.j_per_kbit - 0.1).abs() < 1e-12);
        assert!((rs.j_per_kbit_header - 0.2).abs() < 1e-12);
    }

    #[test]
    fn to_json_is_wellformed_and_nulls_nonfinite() {
        let mut m = Metrics::default();
        let p = pkt(0, 0);
        m.on_generated(&p, true);
        let rs = RunStats::new(m, Energy::from_joules(1.0), Energy::ZERO, 42).with_per_node(vec![
            NodePowerReport {
                node: NodeId(0),
                ledger_j: 0.5,
                drawn_j: Some(0.5),
                capacity_j: Some(2.0),
                residual_j: Some(1.5),
                died_at_s: None,
            },
        ]);
        let j = rs.to_json();
        // Nothing delivered: J/Kbit is ∞ → null in JSON.
        assert!(j.contains("\"j_per_kbit\":null"), "{j}");
        // Convergecast: no reach; the flow ledger still serialises.
        assert!(j.contains("\"broadcast_reach\":null"), "{j}");
        assert!(
            j.contains("\"flows\":[{\"src\":1,\"dst\":0,"),
            "per-flow ledger in JSON: {j}"
        );
        assert!(j.contains("\"generated_packets\":1"));
        assert!(j.contains("\"events\":42"));
        assert!(j.contains("\"died_at_s\":null"));
        assert!(j.contains("\"capacity_j\":2.0"));
        // Balanced braces/brackets, no trailing commas before closers.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",}") && !j.contains(",]"), "{j}");
    }

    #[test]
    fn empty_run_is_infinite_energy_per_bit() {
        let rs = RunStats::new(
            Metrics::default(),
            Energy::from_joules(1.0),
            Energy::ZERO,
            0,
        );
        assert!(rs.j_per_kbit.is_infinite());
        assert_eq!(rs.goodput, 0.0);
    }
}
