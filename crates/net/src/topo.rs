//! Node placement: grids, lines and random fields.
//!
//! The paper's simulation deploys "a 200×200 m² grid network with 36 nodes"
//! — a 6×6 grid at 40 m spacing, which equals the sensor radio range so
//! grid neighbours are exactly one sensor hop apart. The multi-hop feasibility
//! analysis uses a linear topology with 200 m source–sink separation.

use crate::addr::NodeId;
use bcp_sim::rng::Rng;

/// A point in the deployment plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An immutable node placement.
///
/// # Examples
///
/// ```
/// use bcp_net::topo::Topology;
/// use bcp_net::addr::NodeId;
///
/// // The paper's deployment: 6×6 grid, 40 m pitch, 200×200 m².
/// let topo = Topology::grid(6, 40.0);
/// assert_eq!(topo.len(), 36);
/// // Grid neighbours are in sensor range (40 m), diagonals are not.
/// let n = topo.neighbors_within(NodeId(0), 40.0);
/// assert_eq!(n.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    positions: Vec<Position>,
}

impl Topology {
    /// Builds a topology from explicit positions.
    pub fn from_positions(positions: Vec<Position>) -> Self {
        Topology { positions }
    }

    /// A `side × side` grid with `spacing_m` metres between neighbours.
    /// Node 0 is at the origin; ids increase row-major.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or the spacing is not positive and finite.
    pub fn grid(side: usize, spacing_m: f64) -> Self {
        assert!(side > 0, "grid needs at least one node");
        assert!(
            spacing_m.is_finite() && spacing_m > 0.0,
            "invalid spacing {spacing_m}"
        );
        let mut positions = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                positions.push(Position::new(
                    col as f64 * spacing_m,
                    row as f64 * spacing_m,
                ));
            }
        }
        Topology { positions }
    }

    /// `n` nodes on a line with `spacing_m` pitch — the paper's multi-hop
    /// feasibility setting (source and destination separated by 200 m).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the spacing is invalid.
    pub fn line(n: usize, spacing_m: f64) -> Self {
        assert!(n > 0, "line needs at least one node");
        assert!(
            spacing_m.is_finite() && spacing_m > 0.0,
            "invalid spacing {spacing_m}"
        );
        Topology {
            positions: (0..n)
                .map(|i| Position::new(i as f64 * spacing_m, 0.0))
                .collect(),
        }
    }

    /// `n` nodes placed uniformly at random on a `width × height` field.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the field is degenerate.
    pub fn random_uniform(n: usize, width_m: f64, height_m: f64, rng: &mut Rng) -> Self {
        assert!(n > 0, "field needs at least one node");
        assert!(width_m > 0.0 && height_m > 0.0, "degenerate field");
        Topology {
            positions: (0..n)
                .map(|_| Position::new(rng.range_f64(0.0, width_m), rng.range_f64(0.0, height_m)))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All node ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Distance between two nodes in metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(&self.position(b))
    }

    /// `true` when `b` is within `range_m` of `a` (unit-disk model; a node
    /// is never in range of itself).
    ///
    /// Compares *squared* distances: a grid spaced exactly at `range_m`
    /// puts every neighbour on the boundary, and `sqrt` rounding there
    /// could flip adjacency between platforms or opt-levels. Squared
    /// comparison keeps the boundary a single exact float product.
    pub fn in_range(&self, a: NodeId, b: NodeId, range_m: f64) -> bool {
        if a == b {
            return false;
        }
        let (pa, pb) = (self.position(a), self.position(b));
        let (dx, dy) = (pa.x - pb.x, pa.y - pb.y);
        dx * dx + dy * dy <= range_m * range_m
    }

    /// Ids of all nodes within `range_m` of `node`, ascending.
    pub fn neighbors_within(&self, node: NodeId, range_m: f64) -> Vec<NodeId> {
        self.nodes()
            .filter(|&other| self.in_range(node, other, range_m))
            .collect()
    }

    /// Precomputed neighbour sets for every node at the given range.
    pub fn neighbor_table(&self, range_m: f64) -> Vec<Vec<NodeId>> {
        self.nodes()
            .map(|n| self.neighbors_within(n, range_m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_geometry() {
        let t = Topology::grid(6, 40.0);
        assert_eq!(t.len(), 36);
        // Far corner is at (200, 200).
        let far = t.position(NodeId(35));
        assert_eq!((far.x, far.y), (200.0, 200.0));
        // Corner-to-corner distance is 200·√2.
        assert!((t.distance(NodeId(0), NodeId(35)) - 200.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn grid_neighbor_counts() {
        let t = Topology::grid(6, 40.0);
        // Corner: 2 neighbours; edge: 3; interior: 4 (diagonals are 56.6 m,
        // out of the 40 m sensor range).
        assert_eq!(t.neighbors_within(NodeId(0), 40.0).len(), 2);
        assert_eq!(t.neighbors_within(NodeId(1), 40.0).len(), 3);
        assert_eq!(t.neighbors_within(NodeId(7), 40.0).len(), 4);
    }

    #[test]
    fn dot11_range_covers_more() {
        let t = Topology::grid(6, 40.0);
        // At 250 m (Cabletron) a *centered* node hears everyone — this is
        // why the multi-hop scenario's sink sits at the grid centre: the
        // far corners are 282.8 m apart, beyond even Cabletron's range.
        let center = NodeId(14); // (80, 80)
        assert_eq!(t.neighbors_within(center, 250.0).len(), 35);
        assert!(t.distance(NodeId(0), NodeId(35)) > 250.0);
    }

    #[test]
    fn line_matches_paper_multihop() {
        // 200 m separation at 40 m pitch = 5 sensor hops.
        let t = Topology::line(6, 40.0);
        assert_eq!(t.distance(NodeId(0), NodeId(5)), 200.0);
        assert_eq!(t.neighbors_within(NodeId(0), 40.0), vec![NodeId(1)]);
        assert_eq!(
            t.neighbors_within(NodeId(2), 40.0),
            vec![NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn knife_edge_grid_adjacency_is_deterministic() {
        // A grid spaced exactly at the range puts every lattice neighbour
        // on the in-range boundary. Squared-distance comparison keeps
        // them adjacent (d² and r² are the same exact product), and the
        // adjacency must be symmetric and identical to the closed form on
        // every platform/opt-level.
        for spacing in [40.0, 0.5, 37.25] {
            let t = Topology::grid(5, spacing);
            for a in t.nodes() {
                for b in t.nodes() {
                    let same = t.in_range(a, b, spacing);
                    assert_eq!(same, t.in_range(b, a, spacing), "symmetry {a} {b}");
                    // Lattice neighbours (Manhattan distance 1) are
                    // exactly at range; everything else is off-boundary.
                    let (ar, ac) = (a.0 / 5, a.0 % 5);
                    let (br, bc) = (b.0 / 5, b.0 % 5);
                    let lattice = ar.abs_diff(br) + ac.abs_diff(bc) == 1;
                    assert_eq!(same, lattice, "{a}->{b} at spacing {spacing}");
                }
            }
        }
    }

    #[test]
    fn not_in_range_of_self() {
        let t = Topology::grid(2, 10.0);
        assert!(!t.in_range(NodeId(0), NodeId(0), 1000.0));
    }

    #[test]
    fn random_field_bounds_and_determinism() {
        let mut rng = Rng::new(7);
        let a = Topology::random_uniform(50, 100.0, 50.0, &mut rng);
        for n in a.nodes() {
            let p = a.position(n);
            assert!((0.0..100.0).contains(&p.x));
            assert!((0.0..50.0).contains(&p.y));
        }
        let mut rng2 = Rng::new(7);
        let b = Topology::random_uniform(50, 100.0, 50.0, &mut rng2);
        assert_eq!(a, b, "same seed, same field");
    }

    #[test]
    fn neighbor_table_matches_queries() {
        let t = Topology::grid(4, 40.0);
        let table = t.neighbor_table(40.0);
        for n in t.nodes() {
            assert_eq!(table[n.index()], t.neighbors_within(n, 40.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_grid_panics() {
        let _ = Topology::grid(0, 40.0);
    }
}
