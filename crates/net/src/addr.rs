//! Node identity and per-radio addressing.
//!
//! A dual-radio node has one platform identity ([`NodeId`]) and two
//! link-layer addresses, one per radio. BCP must translate between them
//! (Section 3: "BCP needs to be able to map the low-power and high-power
//! radio addresses for the receiver"); [`AddrMap`] is that translation
//! table.

use core::fmt;
use std::collections::HashMap;

/// Platform-level identity of a node (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Link-layer address on the low-power (sensor) radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LowAddr(pub u16);

/// Link-layer address on the high-power (802.11) radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HighAddr(pub u64);

impl NodeId {
    /// The index form used for dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "low:{:04x}", self.0)
    }
}

impl fmt::Display for HighAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "high:{:012x}", self.0)
    }
}

/// Bidirectional map between node identities and their two radio addresses.
///
/// # Examples
///
/// ```
/// use bcp_net::addr::{AddrMap, NodeId};
///
/// let map = AddrMap::for_nodes(4);
/// let n2 = NodeId(2);
/// let low = map.low_of(n2);
/// let high = map.high_of(n2);
/// assert_eq!(map.node_of_low(low), Some(n2));
/// assert_eq!(map.node_of_high(high), Some(n2));
/// ```
#[derive(Debug, Clone)]
pub struct AddrMap {
    low: Vec<LowAddr>,
    high: Vec<HighAddr>,
    by_low: HashMap<LowAddr, NodeId>,
    by_high: HashMap<HighAddr, NodeId>,
}

impl AddrMap {
    /// Assigns addresses to `n` nodes. Addresses are deterministic but not
    /// sequential, mimicking factory-burned identifiers (so nothing in the
    /// stack can cheat by arithmetic on addresses).
    pub fn for_nodes(n: usize) -> Self {
        let mut by_low = HashMap::new();
        let mut by_high = HashMap::new();
        let mut low = Vec::with_capacity(n);
        let mut high = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId(i as u32);
            // Spread bits so adjacent nodes do not get adjacent addresses.
            let l = LowAddr(((i as u16).wrapping_mul(0x9e37)) ^ 0x5aa5);
            let h = HighAddr(((i as u64).wrapping_mul(0x9e3779b97f4a7c15)) | 0x0200_0000_0000);
            low.push(l);
            high.push(h);
            assert!(by_low.insert(l, id).is_none(), "low address collision");
            assert!(by_high.insert(h, id).is_none(), "high address collision");
        }
        AddrMap {
            low,
            high,
            by_low,
            by_high,
        }
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.low.len()
    }

    /// `true` when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.low.is_empty()
    }

    /// The low-radio address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn low_of(&self, node: NodeId) -> LowAddr {
        self.low[node.index()]
    }

    /// The high-radio address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn high_of(&self, node: NodeId) -> HighAddr {
        self.high[node.index()]
    }

    /// Resolves a low-radio address to its node.
    pub fn node_of_low(&self, addr: LowAddr) -> Option<NodeId> {
        self.by_low.get(&addr).copied()
    }

    /// Resolves a high-radio address to its node.
    pub fn node_of_high(&self, addr: HighAddr) -> Option<NodeId> {
        self.by_high.get(&addr).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_for_all_nodes() {
        let map = AddrMap::for_nodes(64);
        assert_eq!(map.len(), 64);
        for i in 0..64 {
            let n = NodeId(i);
            assert_eq!(map.node_of_low(map.low_of(n)), Some(n));
            assert_eq!(map.node_of_high(map.high_of(n)), Some(n));
        }
    }

    #[test]
    fn addresses_are_unique() {
        let map = AddrMap::for_nodes(256);
        let mut lows: Vec<_> = (0..256).map(|i| map.low_of(NodeId(i))).collect();
        lows.sort();
        lows.dedup();
        assert_eq!(lows.len(), 256);
    }

    #[test]
    fn unknown_addresses_resolve_to_none() {
        let map = AddrMap::for_nodes(4);
        assert_eq!(map.node_of_low(LowAddr(0xffff)), None);
        assert_eq!(map.node_of_high(HighAddr(0)), None);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = AddrMap::for_nodes(16);
        let b = AddrMap::for_nodes(16);
        for i in 0..16 {
            assert_eq!(a.low_of(NodeId(i)), b.low_of(NodeId(i)));
            assert_eq!(a.high_of(NodeId(i)), b.high_of(NodeId(i)));
        }
    }

    #[test]
    fn empty_map() {
        let map = AddrMap::for_nodes(0);
        assert!(map.is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        let map = AddrMap::for_nodes(1);
        assert!(map.low_of(NodeId(0)).to_string().starts_with("low:"));
        assert!(map.high_of(NodeId(0)).to_string().starts_with("high:"));
    }
}
