//! Spatial partitioning of a [`Topology`] into shards.
//!
//! The sharded simulator splits one world across cores; this module
//! decides *which node lives on which shard*. The partitioner cuts the
//! deployment plane into K vertical strips of (near-)equal node count —
//! for the paper's grids that means contiguous column bands, so only the
//! nodes along strip edges have radio neighbours on another shard and
//! cross-shard traffic stays proportional to the boundary length, not the
//! area.

use crate::addr::NodeId;
use crate::topo::Topology;

/// An assignment of every node to one of `k` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_of: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Puts all `n` nodes on a single shard (the sequential layout).
    pub fn single(n: usize) -> Partition {
        Partition {
            shard_of: vec![0; n],
            k: 1,
        }
    }

    /// Cuts `topo` into `k` vertical strips balanced by node count: nodes
    /// are ordered by `(x, y, id)` and chunked contiguously, so each shard
    /// owns a spatially compact band. `k` is clamped to `1..=topo.len()`.
    pub fn strips(topo: &Topology, k: usize) -> Partition {
        Self::from_cuts(topo, k, |cuts, _| cuts)
    }

    /// [`strips`], but with every cut line steered away from `hot` — the
    /// node expected to anchor the densest traffic (a convergecast sink,
    /// a broadcast source). Relay load concentrates around that node, and
    /// a transmission next to a cut is re-delivered on the far shard as
    /// `RxBegin`/`RxEnd` duplicates; placing the cuts as far from the hot
    /// node as balance allows keeps the busiest transmitters interior.
    ///
    /// All interior cuts shift together by one offset, chosen (by direct
    /// search) to maximise the hot node's distance to the nearest cut in
    /// strip order, bounded to a quarter of the base strip width so no
    /// shard's node count strays far from `n/k`. The partition stays a
    /// contiguous banding — only where the bands fall changes, and the
    /// choice of partition never affects physics, just how much traffic
    /// crosses shard boundaries.
    ///
    /// [`strips`]: Partition::strips
    pub fn strips_avoiding(topo: &Topology, k: usize, hot: NodeId) -> Partition {
        Self::from_cuts(topo, k, |mut cuts, order| {
            let n = order.len();
            let hot_idx = order
                .iter()
                .position(|&m| m == hot)
                .expect("hot node is in the topology") as isize;
            let width = (n / (cuts.len() + 1)) as isize;
            let slack = width / 4;
            // Clearance beyond half a strip is worthless — no radio reaches
            // that far relative to the strip scale — so the objective is
            // capped there, and a hot node already clear of every cut keeps
            // the perfectly balanced split.
            let clearance = |delta: isize| {
                cuts.iter()
                    .map(|&c| (c as isize + delta - hot_idx).abs())
                    .min()
                    .unwrap_or(isize::MAX)
                    .min(width / 2)
            };
            let mut best = 0isize;
            for delta in -slack..=slack {
                // Strict improvement only: ties keep the smaller shift,
                // so the unshifted balanced cut is the default.
                if clearance(delta) > clearance(best) {
                    best = delta;
                }
            }
            for c in &mut cuts {
                *c = (*c as isize + best) as usize;
            }
            cuts
        })
    }

    /// Shared strip machinery: orders nodes by `(x, y, id)`, computes the
    /// balanced interior cut indices, lets `place` adjust them, and chunks
    /// the order at the final cuts. `place` receives strictly increasing
    /// cuts in `(0, n)` and must return the same.
    fn from_cuts(
        topo: &Topology,
        k: usize,
        place: impl FnOnce(Vec<usize>, &[NodeId]) -> Vec<usize>,
    ) -> Partition {
        let n = topo.len();
        let k = k.clamp(1, n.max(1));
        let mut order: Vec<NodeId> = topo.nodes().collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (topo.position(a), topo.position(b));
            (pa.x, pa.y, a.0)
                .partial_cmp(&(pb.x, pb.y, b.0))
                .expect("finite coordinates")
        });
        let base = n / k;
        let rem = n % k;
        let mut cuts = Vec::with_capacity(k.saturating_sub(1));
        let mut next = 0usize;
        for s in 0..k.saturating_sub(1) {
            next += base + usize::from(s < rem);
            cuts.push(next);
        }
        let cuts = place(cuts, &order);
        debug_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts increase");
        debug_assert!(cuts.iter().all(|&c| c > 0 && c < n), "cuts interior");
        let mut shard_of = vec![0u32; n];
        for (shard, chunk) in split_at_cuts(&order, &cuts).enumerate() {
            for &node in chunk {
                shard_of[node.index()] = shard as u32;
            }
        }
        Partition { shard_of, k }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// `true` when the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Nodes with at least one radio neighbour (at `range_m`) on another
    /// shard — the conservative engine's synchronization frontier.
    pub fn boundary_nodes(&self, topo: &Topology, range_m: f64) -> Vec<NodeId> {
        topo.nodes()
            .filter(|&n| {
                let s = self.shard_of(n);
                topo.neighbors_within(n, range_m)
                    .iter()
                    .any(|&m| self.shard_of(m) != s)
            })
            .collect()
    }

    /// `true` when any in-range link crosses a shard boundary at
    /// `range_m`. When no link of any radio class crosses, the shards are
    /// mutually non-interacting and the lookahead is unbounded.
    pub fn has_cross_links(&self, topo: &Topology, range_m: f64) -> bool {
        topo.nodes().any(|n| {
            let s = self.shard_of(n);
            topo.neighbors_within(n, range_m)
                .iter()
                .any(|&m| self.shard_of(m) != s)
        })
    }

    /// The minimum distance (metres) between any node of shard `i` and any
    /// node of shard `j`, for every ordered pair — the geometric bound
    /// behind the per-pair conservative lookahead: a radio whose range is
    /// below `result[i][j]` can never carry a message between those
    /// shards. The matrix is symmetric and the diagonal is `None` (a
    /// shard's distance to itself is not meaningful); `None` off the
    /// diagonal only occurs for empty shards.
    pub fn min_pair_distance(&self, topo: &Topology) -> Vec<Vec<Option<f64>>> {
        let mut best = vec![vec![f64::INFINITY; self.k]; self.k];
        let nodes: Vec<NodeId> = topo.nodes().collect();
        for (ai, &a) in nodes.iter().enumerate() {
            let sa = self.shard_of(a);
            let pa = topo.position(a);
            for &b in &nodes[ai + 1..] {
                let sb = self.shard_of(b);
                if sa == sb {
                    continue;
                }
                let pb = topo.position(b);
                let (dx, dy) = (pa.x - pb.x, pa.y - pb.y);
                let d2 = dx * dx + dy * dy;
                if d2 < best[sa][sb] {
                    best[sa][sb] = d2;
                    best[sb][sa] = d2;
                }
            }
        }
        best.iter()
            .map(|row| {
                row.iter()
                    .map(|&d2| d2.is_finite().then(|| d2.sqrt()))
                    .collect()
            })
            .collect()
    }
}

/// Splits `order` into the `cuts.len() + 1` contiguous chunks delimited
/// by the cut indices.
fn split_at_cuts<'a, T>(order: &'a [T], cuts: &'a [usize]) -> impl Iterator<Item = &'a [T]> {
    let starts = std::iter::once(0).chain(cuts.iter().copied());
    let ends = cuts.iter().copied().chain(std::iter::once(order.len()));
    starts.zip(ends).map(|(s, e)| &order[s..e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_covers_everything() {
        let p = Partition::single(9);
        assert_eq!(p.k(), 1);
        assert_eq!(p.shard_sizes(), vec![9]);
        assert_eq!(p.shard_of(NodeId(8)), 0);
    }

    #[test]
    fn strips_balance_node_counts() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 4);
        assert_eq!(p.k(), 4);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 36);
        assert_eq!(
            (sizes.iter().max().unwrap() - sizes.iter().min().unwrap()),
            0,
            "36 nodes split 4 ways evenly: {sizes:?}"
        );
    }

    #[test]
    fn strips_are_column_bands_on_a_grid() {
        // Row-major 6×6 grid: node id = row*6 + col. Two strips must split
        // by x (columns 0–2 vs 3–5), not by id blocks.
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 2);
        for node in topo.nodes() {
            let col = node.0 % 6;
            assert_eq!(
                p.shard_of(node),
                usize::from(col >= 3),
                "node {node} in column {col}"
            );
        }
    }

    #[test]
    fn boundary_is_the_strip_edge() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 2);
        let boundary = p.boundary_nodes(&topo, 40.0);
        // At sensor range (orthogonal neighbours) the frontier is columns
        // 2 and 3: 12 of 36 nodes.
        assert_eq!(boundary.len(), 12);
        for node in &boundary {
            let col = node.0 % 6;
            assert!(col == 2 || col == 3, "node {node} in column {col}");
        }
    }

    #[test]
    fn cross_links_depend_on_range() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 3);
        assert!(p.has_cross_links(&topo, 40.0));
        // Below the 40 m pitch no link exists at all, so none can cross.
        assert!(!p.has_cross_links(&topo, 10.0));
    }

    #[test]
    fn strips_avoiding_moves_cuts_off_the_hot_column() {
        // 8×8 grid, 2 strips: the balanced cut falls between columns 3
        // and 4. A hot node in column 4 sits right on that boundary; the
        // steered cut must move as far away as the ±width/4 slack allows
        // while staying a contiguous column banding.
        let topo = Topology::grid(8, 40.0);
        let hot = NodeId(4 * 8 + 4); // row 4, column 4 → sorted index 36
        let p = Partition::strips_avoiding(&topo, 2, hot);
        assert_eq!(p.k(), 2);
        let hot_shard = p.shard_of(hot);
        // The hot node's orthogonal radio neighbours stay on its shard.
        for &m in topo.neighbors_within(hot, 40.0).iter() {
            assert_eq!(p.shard_of(m), hot_shard, "neighbour {m} crosses");
        }
        // Still a contiguous banding by column.
        let mut seen = vec![];
        for col in 0..8u32 {
            let s = p.shard_of(NodeId(col));
            if seen.last() != Some(&s) {
                seen.push(s);
            }
            for row in 1..8u32 {
                assert_eq!(p.shard_of(NodeId(row * 8 + col)), s, "column split");
            }
        }
        assert_eq!(seen, vec![0, 1], "two bands, in order");
        // Balance stays within the documented quarter-width slack.
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        assert!(sizes.iter().all(|&s| (24..=40).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn strips_avoiding_with_clear_hot_node_keeps_the_balanced_cut() {
        // Hot node already far from every cut: no shift is an improvement,
        // so the steered partition equals the plain balanced one.
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips_avoiding(&topo, 2, NodeId(0));
        assert_eq!(p, Partition::strips(&topo, 2));
    }

    #[test]
    fn strips_avoiding_degenerates_safely() {
        // k = 1 (no cuts) and k = n (width 1, zero slack) both stay valid.
        let topo = Topology::grid(2, 40.0);
        let one = Partition::strips_avoiding(&topo, 1, NodeId(3));
        assert_eq!(one.shard_sizes(), vec![4]);
        let all = Partition::strips_avoiding(&topo, 4, NodeId(3));
        assert_eq!(all.shard_sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn min_pair_distance_matches_strip_geometry() {
        // 6×6 grid at 40 m pitch, 3 strips of 2 columns each: adjacent
        // strips are one pitch apart, strips 0 and 2 are three pitches
        // apart (column 1 to column 4).
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 3);
        let m = p.min_pair_distance(&topo);
        assert_eq!(m.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 3);
            assert_eq!(row[i], None, "diagonal is undefined");
            for (j, d) in row.iter().enumerate() {
                if i != j {
                    assert_eq!(*d, m[j][i], "matrix is symmetric");
                }
            }
        }
        assert_eq!(m[0][1], Some(40.0));
        assert_eq!(m[1][2], Some(40.0));
        assert_eq!(m[0][2], Some(120.0));
    }

    #[test]
    fn min_pair_distance_single_shard_is_all_none() {
        let topo = Topology::grid(3, 40.0);
        let p = Partition::single(topo.len());
        assert_eq!(p.min_pair_distance(&topo), vec![vec![None]]);
    }

    #[test]
    fn k_is_clamped_to_node_count() {
        let topo = Topology::grid(2, 40.0);
        let p = Partition::strips(&topo, 64);
        assert_eq!(p.k(), 4);
        assert_eq!(p.shard_sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let topo = Topology::line(10, 40.0);
        let p = Partition::strips(&topo, 3);
        let mut sizes = p.shard_sizes();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3, 4]);
        // Contiguity along the line.
        for i in 0..9 {
            assert!(p.shard_of(NodeId(i + 1)) >= p.shard_of(NodeId(i)));
        }
    }
}
