//! Spatial partitioning of a [`Topology`] into shards.
//!
//! The sharded simulator splits one world across cores; this module
//! decides *which node lives on which shard*. The partitioner cuts the
//! deployment plane into K vertical strips of (near-)equal node count —
//! for the paper's grids that means contiguous column bands, so only the
//! nodes along strip edges have radio neighbours on another shard and
//! cross-shard traffic stays proportional to the boundary length, not the
//! area.

use crate::addr::NodeId;
use crate::topo::Topology;

/// An assignment of every node to one of `k` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_of: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Puts all `n` nodes on a single shard (the sequential layout).
    pub fn single(n: usize) -> Partition {
        Partition {
            shard_of: vec![0; n],
            k: 1,
        }
    }

    /// Cuts `topo` into `k` vertical strips balanced by node count: nodes
    /// are ordered by `(x, y, id)` and chunked contiguously, so each shard
    /// owns a spatially compact band. `k` is clamped to `1..=topo.len()`.
    pub fn strips(topo: &Topology, k: usize) -> Partition {
        let n = topo.len();
        let k = k.clamp(1, n.max(1));
        let mut order: Vec<NodeId> = topo.nodes().collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (topo.position(a), topo.position(b));
            (pa.x, pa.y, a.0)
                .partial_cmp(&(pb.x, pb.y, b.0))
                .expect("finite coordinates")
        });
        let mut shard_of = vec![0u32; n];
        let base = n / k;
        let rem = n % k;
        let mut next = 0usize;
        for (shard, chunk) in
            (0..k)
                .map(|s| base + usize::from(s < rem))
                .enumerate()
                .map(|(s, len)| {
                    let c = &order[next..next + len];
                    next += len;
                    (s, c)
                })
        {
            for &node in chunk {
                shard_of[node.index()] = shard as u32;
            }
        }
        Partition { shard_of, k }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// `true` when the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Nodes with at least one radio neighbour (at `range_m`) on another
    /// shard — the conservative engine's synchronization frontier.
    pub fn boundary_nodes(&self, topo: &Topology, range_m: f64) -> Vec<NodeId> {
        topo.nodes()
            .filter(|&n| {
                let s = self.shard_of(n);
                topo.neighbors_within(n, range_m)
                    .iter()
                    .any(|&m| self.shard_of(m) != s)
            })
            .collect()
    }

    /// `true` when any in-range link crosses a shard boundary at
    /// `range_m`. When no link of any radio class crosses, the shards are
    /// mutually non-interacting and the lookahead is unbounded.
    pub fn has_cross_links(&self, topo: &Topology, range_m: f64) -> bool {
        topo.nodes().any(|n| {
            let s = self.shard_of(n);
            topo.neighbors_within(n, range_m)
                .iter()
                .any(|&m| self.shard_of(m) != s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_covers_everything() {
        let p = Partition::single(9);
        assert_eq!(p.k(), 1);
        assert_eq!(p.shard_sizes(), vec![9]);
        assert_eq!(p.shard_of(NodeId(8)), 0);
    }

    #[test]
    fn strips_balance_node_counts() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 4);
        assert_eq!(p.k(), 4);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 36);
        assert_eq!(
            (sizes.iter().max().unwrap() - sizes.iter().min().unwrap()),
            0,
            "36 nodes split 4 ways evenly: {sizes:?}"
        );
    }

    #[test]
    fn strips_are_column_bands_on_a_grid() {
        // Row-major 6×6 grid: node id = row*6 + col. Two strips must split
        // by x (columns 0–2 vs 3–5), not by id blocks.
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 2);
        for node in topo.nodes() {
            let col = node.0 % 6;
            assert_eq!(
                p.shard_of(node),
                usize::from(col >= 3),
                "node {node} in column {col}"
            );
        }
    }

    #[test]
    fn boundary_is_the_strip_edge() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 2);
        let boundary = p.boundary_nodes(&topo, 40.0);
        // At sensor range (orthogonal neighbours) the frontier is columns
        // 2 and 3: 12 of 36 nodes.
        assert_eq!(boundary.len(), 12);
        for node in &boundary {
            let col = node.0 % 6;
            assert!(col == 2 || col == 3, "node {node} in column {col}");
        }
    }

    #[test]
    fn cross_links_depend_on_range() {
        let topo = Topology::grid(6, 40.0);
        let p = Partition::strips(&topo, 3);
        assert!(p.has_cross_links(&topo, 40.0));
        // Below the 40 m pitch no link exists at all, so none can cross.
        assert!(!p.has_cross_links(&topo, 10.0));
    }

    #[test]
    fn k_is_clamped_to_node_count() {
        let topo = Topology::grid(2, 40.0);
        let p = Partition::strips(&topo, 64);
        assert_eq!(p.k(), 4);
        assert_eq!(p.shard_sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let topo = Topology::line(10, 40.0);
        let p = Partition::strips(&topo, 3);
        let mut sizes = p.shard_sizes();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3, 4]);
        // Contiguity along the line.
        for i in 0..9 {
            assert!(p.shard_of(NodeId(i + 1)) >= p.shard_of(NodeId(i)));
        }
    }
}
