//! Hop-count routing over the unit-disk graph.
//!
//! The paper decouples routing from the protocol: "two separate trees that
//! go over sensor and IEEE 802.11 radios are built". [`Routes`] holds
//! all-pairs shortest-hop next-hops for one radio's connectivity graph
//! (BFS; ties broken by lowest node id, so routes are deterministic).
//! [`ShortcutTable`] implements Section 3's route optimization: a sender
//! that overhears its packet being forwarded learns the *last* forwarder as
//! a direct next hop for future bursts.

use crate::addr::NodeId;
use crate::topo::Topology;
use std::collections::VecDeque;

/// All-pairs shortest-hop routing for one radio range.
///
/// # Examples
///
/// ```
/// use bcp_net::addr::NodeId;
/// use bcp_net::routing::Routes;
/// use bcp_net::topo::Topology;
///
/// let topo = Topology::line(6, 40.0);
/// let routes = Routes::shortest_hop(&topo, 40.0);
/// // 5 hops end to end, next hop is the adjacent node.
/// assert_eq!(routes.hops(NodeId(5), NodeId(0)), Some(5));
/// assert_eq!(routes.next_hop(NodeId(5), NodeId(0)), Some(NodeId(4)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    n: usize,
    // next[dst][src] = first hop from src toward dst.
    next: Vec<Vec<Option<NodeId>>>,
    // dist[dst][src] = hop count from src to dst.
    dist: Vec<Vec<Option<u32>>>,
}

impl Routes {
    /// Builds shortest-hop routes over the unit-disk graph at `range_m`.
    pub fn shortest_hop(topo: &Topology, range_m: f64) -> Self {
        let n = topo.len();
        let neighbors = topo.neighbor_table(range_m);
        let mut next = Vec::with_capacity(n);
        let mut dist = Vec::with_capacity(n);
        for dst in topo.nodes() {
            let (d, parent) = bfs_from(&neighbors, dst, n);
            // parent[src] points one hop toward dst (BFS tree rooted at dst).
            next.push(parent);
            dist.push(d);
        }
        Routes { n, next, dist }
    }

    /// Number of nodes routed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no nodes are routed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// First hop from `src` toward `dst`; `None` when unreachable or when
    /// `src == dst`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        self.next[dst.index()][src.index()]
    }

    /// Hop count from `src` to `dst`; `Some(0)` when equal, `None` when
    /// unreachable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.dist[dst.index()][src.index()]
    }

    /// `true` when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.dist
            .iter()
            .all(|row| row.iter().all(|d| d.is_some()))
    }

    /// The full path from `src` to `dst`, inclusive of both; `None` when
    /// unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.hops(src, dst)?;
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > self.n {
                unreachable!("routing loop from {src} to {dst}");
            }
        }
        Some(path)
    }

    /// The forward progress `fp^H` of Section 2.1 for a sender: how many
    /// hops of *this* routing (the low radio's) one direct hop to `dst`
    /// spans.
    pub fn forward_progress(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.hops(src, dst)
    }
}

fn bfs_from(
    neighbors: &[Vec<NodeId>],
    root: NodeId,
    n: usize,
) -> (Vec<Option<u32>>, Vec<Option<NodeId>>) {
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut toward: Vec<Option<NodeId>> = vec![None; n];
    dist[root.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        // Neighbour lists are ascending, so parents tie-break to lowest id.
        for &v in &neighbors[u.index()] {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                // From v, going toward root means going through u.
                toward[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (dist, toward)
}

/// Learned high-radio shortcuts (Section 3 route optimization).
///
/// Initially the high radio follows the low-radio route. When the sender
/// overhears its own packet being forwarded, the last forwarder heard
/// becomes the next hop for subsequent transmissions, cutting out
/// intermediate relays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShortcutTable {
    // (dst -> learned next hop); small n, linear scan is fine and keeps
    // iteration order deterministic.
    entries: Vec<(NodeId, NodeId)>,
}

impl ShortcutTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that packets for `dst` were last overheard being forwarded
    /// by `via`; replaces any previous entry.
    pub fn learn(&mut self, dst: NodeId, via: NodeId) {
        if let Some(e) = self.entries.iter_mut().find(|(d, _)| *d == dst) {
            e.1 = via;
        } else {
            self.entries.push((dst, via));
        }
    }

    /// The learned next hop toward `dst`, if any.
    pub fn shortcut(&self, dst: NodeId) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, via)| *via)
    }

    /// Drops the entry for `dst` (e.g. after a delivery failure).
    pub fn invalidate(&mut self, dst: NodeId) {
        self.entries.retain(|(d, _)| *d != dst);
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_hop_by_hop() {
        let topo = Topology::line(6, 40.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(r.is_connected());
        assert_eq!(r.hops(NodeId(5), NodeId(0)), Some(5));
        assert_eq!(
            r.path(NodeId(5), NodeId(0)).unwrap(),
            (0..=5).rev().map(NodeId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_hops_are_manhattan() {
        let topo = Topology::grid(6, 40.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(r.is_connected());
        // Corner (0,0) to corner (5,5): 10 hops.
        assert_eq!(r.hops(NodeId(35), NodeId(0)), Some(10));
        // One row over: 1 hop.
        assert_eq!(r.hops(NodeId(6), NodeId(0)), Some(1));
    }

    #[test]
    fn dot11_range_makes_single_hop_to_central_sink() {
        // The multi-hop scenario: sink at the grid centre so Cabletron
        // (250 m) reaches it in one hop from every node.
        let topo = Topology::grid(6, 40.0);
        let sink = NodeId(14); // (80, 80): at most 169.7 m from any node
        let r = Routes::shortest_hop(&topo, 250.0);
        for n in topo.nodes() {
            if n != sink {
                assert_eq!(r.hops(n, sink), Some(1), "direct at 250 m");
                assert_eq!(r.next_hop(n, sink), Some(sink));
            }
        }
    }

    #[test]
    fn forward_progress_matches_paper() {
        // 200 m line: 5 sensor hops; Cabletron (250 m) reaches in one, so
        // its forward progress is 5 (Section 2.2).
        let topo = Topology::line(6, 40.0);
        let low = Routes::shortest_hop(&topo, 40.0);
        assert_eq!(low.forward_progress(NodeId(5), NodeId(0)), Some(5));
    }

    #[test]
    fn disconnected_pairs_unreachable() {
        // Two nodes 100 m apart with 40 m range.
        let topo = Topology::line(2, 100.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(!r.is_connected());
        assert_eq!(r.hops(NodeId(0), NodeId(1)), None);
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), None);
        assert_eq!(r.path(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn self_routes() {
        let topo = Topology::grid(2, 10.0);
        let r = Routes::shortest_hop(&topo, 20.0);
        assert_eq!(r.hops(NodeId(1), NodeId(1)), Some(0));
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(r.path(NodeId(1), NodeId(1)), Some(vec![NodeId(1)]));
    }

    #[test]
    fn routes_are_deterministic() {
        let topo = Topology::grid(5, 40.0);
        let a = Routes::shortest_hop(&topo, 40.0);
        let b = Routes::shortest_hop(&topo, 40.0);
        assert_eq!(a, b);
    }

    #[test]
    fn paths_never_loop() {
        let topo = Topology::grid(6, 40.0);
        let r = Routes::shortest_hop(&topo, 60.0);
        for src in topo.nodes() {
            let path = r.path(src, NodeId(0)).expect("connected");
            let mut dedup = path.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), path.len(), "no repeated nodes");
        }
    }

    #[test]
    fn shortcut_learning() {
        let mut t = ShortcutTable::new();
        assert!(t.is_empty());
        let dst = NodeId(0);
        t.learn(dst, NodeId(3));
        assert_eq!(t.shortcut(dst), Some(NodeId(3)));
        // Later overhearing replaces the entry ("the last node that
        // forwards the packet is set as the next-hop").
        t.learn(dst, NodeId(1));
        assert_eq!(t.shortcut(dst), Some(NodeId(1)));
        assert_eq!(t.len(), 1);
        t.invalidate(dst);
        assert_eq!(t.shortcut(dst), None);
    }
}
