//! Hop-count routing over the unit-disk graph.
//!
//! The paper decouples routing from the protocol: "two separate trees that
//! go over sensor and IEEE 802.11 radios are built". [`Routes`] holds
//! all-pairs shortest-hop next-hops for one radio's connectivity graph
//! (BFS; ties broken by lowest node id, so routes are deterministic).
//! [`ShortcutTable`] implements Section 3's route optimization: a sender
//! that overhears its packet being forwarded learns the *last* forwarder as
//! a direct next hop for future bursts.

use crate::addr::NodeId;
use crate::topo::Topology;
use std::collections::VecDeque;

/// How routes weigh candidate paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteWeight {
    /// Fewest hops (the paper's BFS trees); ties broken by lowest node id.
    #[default]
    ShortestHop,
    /// Max–min residual energy: among all paths, maximise the *minimum*
    /// residual energy over the relay nodes, breaking ties by hop count
    /// then lowest node id. Spreads forwarding load away from nearly-dead
    /// relays, the classic lifetime-maximising weight.
    MaxMinResidual,
}

/// All-pairs shortest-hop routing for one radio range.
///
/// # Examples
///
/// ```
/// use bcp_net::addr::NodeId;
/// use bcp_net::routing::Routes;
/// use bcp_net::topo::Topology;
///
/// let topo = Topology::line(6, 40.0);
/// let routes = Routes::shortest_hop(&topo, 40.0);
/// // 5 hops end to end, next hop is the adjacent node.
/// assert_eq!(routes.hops(NodeId(5), NodeId(0)), Some(5));
/// assert_eq!(routes.next_hop(NodeId(5), NodeId(0)), Some(NodeId(4)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    n: usize,
    // next[dst][src] = first hop from src toward dst.
    next: Vec<Vec<Option<NodeId>>>,
    // dist[dst][src] = hop count from src to dst.
    dist: Vec<Vec<Option<u32>>>,
}

impl Routes {
    /// Builds shortest-hop routes over the unit-disk graph at `range_m`.
    pub fn shortest_hop(topo: &Topology, range_m: f64) -> Self {
        Self::shortest_hop_excluding(topo, range_m, &[])
    }

    /// Shortest-hop routes over the unit-disk graph with `excluded` nodes
    /// removed (dead nodes neither relay nor terminate routes) — the
    /// route-repair primitive: after a death, rebuild with the corpse
    /// excluded and every surviving node routes around it.
    ///
    /// # Examples
    ///
    /// ```
    /// use bcp_net::addr::NodeId;
    /// use bcp_net::routing::Routes;
    /// use bcp_net::topo::Topology;
    ///
    /// let topo = Topology::grid(3, 10.0);
    /// // Node 1 (the only 1-hop relay from 2 to 0 besides 3... ) dies:
    /// let r = Routes::shortest_hop_excluding(&topo, 10.0, &[NodeId(1)]);
    /// // 2 still reaches 0, but not through 1.
    /// let path = r.path(NodeId(2), NodeId(0)).expect("rerouted");
    /// assert!(!path.contains(&NodeId(1)));
    /// ```
    pub fn shortest_hop_excluding(topo: &Topology, range_m: f64, excluded: &[NodeId]) -> Self {
        let n = topo.len();
        let neighbors = prune(topo.neighbor_table(range_m), excluded);
        let mut next = Vec::with_capacity(n);
        let mut dist = Vec::with_capacity(n);
        for dst in topo.nodes() {
            if excluded.contains(&dst) {
                // A dead destination is unreachable from everywhere.
                next.push(vec![None; n]);
                dist.push(vec![None; n]);
                continue;
            }
            let (d, parent) = bfs_from(&neighbors, dst, n);
            // parent[src] points one hop toward dst (BFS tree rooted at dst).
            next.push(parent);
            dist.push(d);
        }
        Routes { n, next, dist }
    }

    /// Max–min residual-energy routes: each node picks the path to each
    /// destination whose *bottleneck relay* (the relay with the least
    /// residual energy, endpoints excluded) is as healthy as possible;
    /// ties break by hop count, then lowest node id, so routes stay
    /// deterministic. `residual_j[i]` is node `i`'s remaining energy in
    /// joules (`f64::INFINITY` for mains-powered nodes); `excluded` nodes
    /// are dead and carry nothing.
    ///
    /// # Panics
    ///
    /// Panics if `residual_j.len() != topo.len()`.
    pub fn max_min_residual(
        topo: &Topology,
        range_m: f64,
        residual_j: &[f64],
        excluded: &[NodeId],
    ) -> Self {
        let n = topo.len();
        assert_eq!(residual_j.len(), n, "one residual per node");
        let neighbors = prune(topo.neighbor_table(range_m), excluded);
        let mut next = Vec::with_capacity(n);
        let mut dist = Vec::with_capacity(n);
        for dst in topo.nodes() {
            if excluded.contains(&dst) {
                next.push(vec![None; n]);
                dist.push(vec![None; n]);
                continue;
            }
            let (d, parent) = widest_from(&neighbors, residual_j, dst, n);
            next.push(parent);
            dist.push(d);
        }
        Routes { n, next, dist }
    }

    /// Number of nodes routed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no nodes are routed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The raw route tables `(next, dist)` (both indexed `[dst][src]`),
    /// for exact checkpointing.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (&[Vec<Option<NodeId>>], &[Vec<Option<u32>>]) {
        (&self.next, &self.dist)
    }

    /// Rebuilds routes from tables captured by
    /// [`raw_parts`](Self::raw_parts).
    ///
    /// # Panics
    ///
    /// Panics if the two tables disagree in size.
    pub fn from_raw_parts(next: Vec<Vec<Option<NodeId>>>, dist: Vec<Vec<Option<u32>>>) -> Self {
        assert_eq!(next.len(), dist.len(), "route tables must agree in size");
        Routes {
            n: next.len(),
            next,
            dist,
        }
    }

    /// First hop from `src` toward `dst`; `None` when unreachable or when
    /// `src == dst`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        self.next[dst.index()][src.index()]
    }

    /// Hop count from `src` to `dst`; `Some(0)` when equal, `None` when
    /// unreachable.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.dist[dst.index()][src.index()]
    }

    /// `true` when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|row| row.iter().all(|d| d.is_some()))
    }

    /// The full path from `src` to `dst`, inclusive of both; `None` when
    /// unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.hops(src, dst)?;
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > self.n {
                unreachable!("routing loop from {src} to {dst}");
            }
        }
        Some(path)
    }

    /// The forward progress `fp^H` of Section 2.1 for a sender: how many
    /// hops of *this* routing (the low radio's) one direct hop to `dst`
    /// spans.
    pub fn forward_progress(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.hops(src, dst)
    }
}

/// Removes `excluded` nodes from a neighbour table (both directions).
fn prune(mut neighbors: Vec<Vec<NodeId>>, excluded: &[NodeId]) -> Vec<Vec<NodeId>> {
    if excluded.is_empty() {
        return neighbors;
    }
    for (i, list) in neighbors.iter_mut().enumerate() {
        if excluded.contains(&NodeId(i as u32)) {
            list.clear();
        } else {
            list.retain(|v| !excluded.contains(v));
        }
    }
    neighbors
}

/// Widest-path (bottleneck) tree rooted at `root`: for every node, the path
/// toward `root` maximising the minimum residual over *relay* nodes
/// (endpoints excluded), tie-broken by hop count then lowest parent id.
/// Runs the O(n²) Dijkstra variant — fine at sensor-network sizes and
/// allocation-free beyond the label arrays.
fn widest_from(
    neighbors: &[Vec<NodeId>],
    residual_j: &[f64],
    root: NodeId,
    n: usize,
) -> (Vec<Option<u32>>, Vec<Option<NodeId>>) {
    const UNSET: f64 = f64::NEG_INFINITY;
    let mut width = vec![UNSET; n];
    let mut hops: Vec<u32> = vec![u32::MAX; n];
    let mut toward: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    width[root.index()] = f64::INFINITY;
    hops[root.index()] = 0;
    loop {
        // Pick the best unfinalised labelled node: widest, then fewest
        // hops, then lowest id (the scan order breaks the id tie).
        let mut best: Option<usize> = None;
        for i in 0..n {
            if done[i] || width[i] == UNSET {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if width[i] > width[b] || (width[i] == width[b] && hops[i] < hops[b]) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(u) = best else { break };
        done[u] = true;
        // Routing *through* u costs u's residual, unless u is the root
        // (the destination spends no relay energy).
        let via_u = if u == root.index() {
            f64::INFINITY
        } else {
            width[u].min(residual_j[u])
        };
        for &v in &neighbors[u] {
            let v = v.index();
            if done[v] {
                continue;
            }
            let better = via_u > width[v]
                || (via_u == width[v] && hops[u] + 1 < hops[v])
                || (via_u == width[v]
                    && hops[u] + 1 == hops[v]
                    && toward[v].map(|p| u < p.index()).unwrap_or(true));
            if better {
                width[v] = via_u;
                hops[v] = hops[u] + 1;
                toward[v] = Some(NodeId(u as u32));
            }
        }
    }
    let dist = hops
        .into_iter()
        .map(|h| if h == u32::MAX { None } else { Some(h) })
        .collect();
    (dist, toward)
}

fn bfs_from(
    neighbors: &[Vec<NodeId>],
    root: NodeId,
    n: usize,
) -> (Vec<Option<u32>>, Vec<Option<NodeId>>) {
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut toward: Vec<Option<NodeId>> = vec![None; n];
    dist[root.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        // Neighbour lists are ascending, so parents tie-break to lowest id.
        for &v in &neighbors[u.index()] {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                // From v, going toward root means going through u.
                toward[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (dist, toward)
}

/// A source-rooted dissemination tree: the reverse of the shortest-hop
/// (or widest-path) tree [`Routes`] builds toward the same node.
///
/// Convergecast routes answer "which neighbour do I hand data to, going
/// *toward* `root`?"; dissemination asks the transpose — "which
/// neighbours take data *from* me, coming from `root`?". Edge `u → v`
/// exists exactly when `routes.next_hop(v, root) == u`, so the tree is
/// deterministic whenever the routes are, and rebuilding routes after a
/// node death (route repair) repairs the tree for free.
///
/// # Examples
///
/// ```
/// use bcp_net::addr::NodeId;
/// use bcp_net::routing::{Dissemination, Routes};
/// use bcp_net::topo::Topology;
///
/// let topo = Topology::line(4, 40.0);
/// let routes = Routes::shortest_hop(&topo, 40.0);
/// let tree = Dissemination::from_routes(&routes, NodeId(0));
/// assert_eq!(tree.children(NodeId(0)), &[NodeId(1)]);
/// assert_eq!(tree.subtree(NodeId(2)), vec![NodeId(2), NodeId(3)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dissemination {
    root: NodeId,
    children: Vec<Vec<NodeId>>,
    reached: Vec<bool>,
}

impl Dissemination {
    /// Builds the tree rooted at `root` by reversing `routes`' next hops
    /// toward it. Nodes `routes` cannot reach (disconnected or excluded
    /// as dead) are simply absent.
    pub fn from_routes(routes: &Routes, root: NodeId) -> Self {
        let n = routes.len();
        let mut children = vec![Vec::new(); n];
        let mut reached = vec![false; n];
        reached[root.index()] = true;
        for v in 0..n as u32 {
            let v = NodeId(v);
            if v == root {
                continue;
            }
            if let Some(parent) = routes.next_hop(v, root) {
                // v's first hop toward root is its tree parent; node ids
                // ascend, so every child list is born sorted.
                children[parent.index()].push(v);
                reached[v.index()] = true;
            }
        }
        Dissemination {
            root,
            children,
            reached,
        }
    }

    /// The disseminating node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The nodes that take data directly from `node` (ascending ids).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// `true` when the tree spans `node` (the root always; others exactly
    /// when the routes reach them).
    pub fn contains(&self, node: NodeId) -> bool {
        self.reached[node.index()]
    }

    /// How many nodes the tree spans, root included.
    pub fn coverage(&self) -> usize {
        self.reached.iter().filter(|&&r| r).count()
    }

    /// The raw tree registers `(root, children, reached)`, for exact
    /// checkpointing.
    pub fn raw_parts(&self) -> (NodeId, &[Vec<NodeId>], &[bool]) {
        (self.root, &self.children, &self.reached)
    }

    /// Rebuilds a tree from registers captured by
    /// [`raw_parts`](Self::raw_parts).
    ///
    /// # Panics
    ///
    /// Panics if the two tables disagree in size.
    pub fn from_raw_parts(root: NodeId, children: Vec<Vec<NodeId>>, reached: Vec<bool>) -> Self {
        assert_eq!(
            children.len(),
            reached.len(),
            "tree tables must agree in size"
        );
        Dissemination {
            root,
            children,
            reached,
        }
    }

    /// `node` plus every descendant, in depth-first (stack) order — the
    /// set of nodes that lose a packet when the edge into `node` fails.
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children(u).iter().copied());
        }
        out
    }
}

/// Learned high-radio shortcuts (Section 3 route optimization).
///
/// Initially the high radio follows the low-radio route. When the sender
/// overhears its own packet being forwarded, the last forwarder heard
/// becomes the next hop for subsequent transmissions, cutting out
/// intermediate relays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShortcutTable {
    // (dst -> learned next hop); small n, linear scan is fine and keeps
    // iteration order deterministic.
    entries: Vec<(NodeId, NodeId)>,
}

impl ShortcutTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that packets for `dst` were last overheard being forwarded
    /// by `via`; replaces any previous entry.
    pub fn learn(&mut self, dst: NodeId, via: NodeId) {
        if let Some(e) = self.entries.iter_mut().find(|(d, _)| *d == dst) {
            e.1 = via;
        } else {
            self.entries.push((dst, via));
        }
    }

    /// The learned next hop toward `dst`, if any.
    pub fn shortcut(&self, dst: NodeId) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, via)| *via)
    }

    /// Drops the entry for `dst` (e.g. after a delivery failure).
    pub fn invalidate(&mut self, dst: NodeId) {
        self.entries.retain(|(d, _)| *d != dst);
    }

    /// Drops every entry learned *through* `via` — route repair when a
    /// forwarder dies: a shortcut through a corpse is a blackhole.
    pub fn invalidate_via(&mut self, via: NodeId) {
        self.entries.retain(|(_, v)| *v != via);
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The learned entries in their deterministic learn order, for exact
    /// checkpointing.
    pub fn entries(&self) -> &[(NodeId, NodeId)] {
        &self.entries
    }

    /// Rebuilds a table from entries captured by
    /// [`entries`](Self::entries), preserving their order.
    pub fn from_entries(entries: Vec<(NodeId, NodeId)>) -> Self {
        ShortcutTable { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_routes_hop_by_hop() {
        let topo = Topology::line(6, 40.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(r.is_connected());
        assert_eq!(r.hops(NodeId(5), NodeId(0)), Some(5));
        assert_eq!(
            r.path(NodeId(5), NodeId(0)).unwrap(),
            (0..=5).rev().map(NodeId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_hops_are_manhattan() {
        let topo = Topology::grid(6, 40.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(r.is_connected());
        // Corner (0,0) to corner (5,5): 10 hops.
        assert_eq!(r.hops(NodeId(35), NodeId(0)), Some(10));
        // One row over: 1 hop.
        assert_eq!(r.hops(NodeId(6), NodeId(0)), Some(1));
    }

    #[test]
    fn dot11_range_makes_single_hop_to_central_sink() {
        // The multi-hop scenario: sink at the grid centre so Cabletron
        // (250 m) reaches it in one hop from every node.
        let topo = Topology::grid(6, 40.0);
        let sink = NodeId(14); // (80, 80): at most 169.7 m from any node
        let r = Routes::shortest_hop(&topo, 250.0);
        for n in topo.nodes() {
            if n != sink {
                assert_eq!(r.hops(n, sink), Some(1), "direct at 250 m");
                assert_eq!(r.next_hop(n, sink), Some(sink));
            }
        }
    }

    #[test]
    fn forward_progress_matches_paper() {
        // 200 m line: 5 sensor hops; Cabletron (250 m) reaches in one, so
        // its forward progress is 5 (Section 2.2).
        let topo = Topology::line(6, 40.0);
        let low = Routes::shortest_hop(&topo, 40.0);
        assert_eq!(low.forward_progress(NodeId(5), NodeId(0)), Some(5));
    }

    #[test]
    fn disconnected_pairs_unreachable() {
        // Two nodes 100 m apart with 40 m range.
        let topo = Topology::line(2, 100.0);
        let r = Routes::shortest_hop(&topo, 40.0);
        assert!(!r.is_connected());
        assert_eq!(r.hops(NodeId(0), NodeId(1)), None);
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), None);
        assert_eq!(r.path(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn self_routes() {
        let topo = Topology::grid(2, 10.0);
        let r = Routes::shortest_hop(&topo, 20.0);
        assert_eq!(r.hops(NodeId(1), NodeId(1)), Some(0));
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(r.path(NodeId(1), NodeId(1)), Some(vec![NodeId(1)]));
    }

    #[test]
    fn routes_are_deterministic() {
        let topo = Topology::grid(5, 40.0);
        let a = Routes::shortest_hop(&topo, 40.0);
        let b = Routes::shortest_hop(&topo, 40.0);
        assert_eq!(a, b);
    }

    #[test]
    fn paths_never_loop() {
        let topo = Topology::grid(6, 40.0);
        let r = Routes::shortest_hop(&topo, 60.0);
        for src in topo.nodes() {
            let path = r.path(src, NodeId(0)).expect("connected");
            let mut dedup = path.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), path.len(), "no repeated nodes");
        }
    }

    #[test]
    fn excluding_nodes_reroutes_around_them() {
        // 3×3 grid, 10 m pitch, 10 m range: orthogonal neighbours only.
        let topo = Topology::grid(3, 10.0);
        let full = Routes::shortest_hop(&topo, 10.0);
        assert_eq!(full.hops(NodeId(8), NodeId(0)), Some(4));
        // The two centre-adjacent relays 1 and 3 die: corner 8 must route
        // the long way round and never through a corpse.
        let dead = [NodeId(1), NodeId(3)];
        let r = Routes::shortest_hop_excluding(&topo, 10.0, &dead);
        let path = r.path(NodeId(8), NodeId(0));
        assert!(
            path.is_none(),
            "0 is cut off entirely: its only neighbours died"
        );
        // Non-severed pairs still route, avoiding the dead.
        let p = r.path(NodeId(8), NodeId(2)).expect("2 is reachable");
        for d in dead {
            assert!(!p.contains(&d), "path uses dead node {d}");
        }
        // Dead nodes are unreachable as destinations and sources.
        assert_eq!(r.hops(NodeId(8), NodeId(1)), None);
        assert_eq!(r.hops(NodeId(1), NodeId(8)), None);
    }

    #[test]
    fn excluding_nothing_matches_plain_bfs() {
        let topo = Topology::grid(5, 40.0);
        assert_eq!(
            Routes::shortest_hop(&topo, 60.0),
            Routes::shortest_hop_excluding(&topo, 60.0, &[])
        );
    }

    #[test]
    fn max_min_residual_avoids_drained_relays() {
        // A 4-node diamond: 0 — {1, 2} — 3, with 1 nearly drained.
        use crate::topo::Position;
        let topo = Topology::from_positions(vec![
            Position::new(0.0, 0.0),   // 0: source side
            Position::new(10.0, 8.0),  // 1: drained relay
            Position::new(10.0, -8.0), // 2: healthy relay
            Position::new(20.0, 0.0),  // 3: destination
        ]);
        let range = 14.0; // 0↔1, 0↔2, 1↔3, 2↔3; not 0↔3 (20 m), not 1↔2 (16 m)
        let residual = [5.0, 0.1, 4.0, f64::INFINITY];
        let r = Routes::max_min_residual(&topo, range, &residual, &[]);
        assert_eq!(
            r.next_hop(NodeId(0), NodeId(3)),
            Some(NodeId(2)),
            "routes through the healthy relay"
        );
        // Hop counts still come back, and equal-residual ties prefer
        // fewer hops: from 1 the direct link to 3 wins.
        assert_eq!(r.hops(NodeId(0), NodeId(3)), Some(2));
        assert_eq!(r.next_hop(NodeId(1), NodeId(3)), Some(NodeId(3)));
    }

    #[test]
    fn max_min_residual_with_equal_energy_degenerates_to_hops() {
        let topo = Topology::grid(4, 40.0);
        let residual = vec![100.0; topo.len()];
        let widest = Routes::max_min_residual(&topo, 40.0, &residual, &[]);
        let bfs = Routes::shortest_hop(&topo, 40.0);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                assert_eq!(
                    widest.hops(src, dst),
                    bfs.hops(src, dst),
                    "{src}->{dst}: equal residuals must keep shortest hops"
                );
            }
        }
    }

    #[test]
    fn max_min_residual_respects_exclusions() {
        let topo = Topology::line(4, 40.0);
        let residual = vec![10.0; 4];
        let r = Routes::max_min_residual(&topo, 40.0, &residual, &[NodeId(1)]);
        assert_eq!(r.hops(NodeId(3), NodeId(0)), None, "line severed at 1");
        assert_eq!(r.hops(NodeId(3), NodeId(2)), Some(1));
    }

    #[test]
    fn route_weight_default_is_shortest_hop() {
        assert_eq!(RouteWeight::default(), RouteWeight::ShortestHop);
    }

    #[test]
    fn dissemination_reverses_the_bfs_tree() {
        let topo = Topology::grid(3, 10.0);
        let routes = Routes::shortest_hop(&topo, 10.0);
        let tree = Dissemination::from_routes(&routes, NodeId(0));
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.coverage(), 9, "connected grid is fully spanned");
        // Every non-root node appears as exactly one child, under its
        // BFS parent.
        let mut seen = vec![0u32; 9];
        for u in topo.nodes() {
            for &c in tree.children(u) {
                assert_eq!(routes.next_hop(c, NodeId(0)), Some(u));
                seen[c.index()] += 1;
            }
        }
        assert_eq!(seen[0], 0, "the root has no parent");
        assert!(
            seen[1..].iter().all(|&s| s == 1),
            "one parent each: {seen:?}"
        );
        // Subtrees partition the descendants.
        let whole = tree.subtree(NodeId(0));
        assert_eq!(whole.len(), 9);
    }

    #[test]
    fn dissemination_skips_dead_and_disconnected_nodes() {
        // A 4-node line severed by excluding node 1: the tree from 0
        // spans only {0, 1-excluded? no:} {0}∪nothing past the corpse.
        let topo = Topology::line(4, 40.0);
        let routes = Routes::shortest_hop_excluding(&topo, 40.0, &[NodeId(1)]);
        let tree = Dissemination::from_routes(&routes, NodeId(0));
        assert!(tree.contains(NodeId(0)));
        assert!(!tree.contains(NodeId(1)), "corpses are not spanned");
        assert!(
            !tree.contains(NodeId(2)),
            "nodes behind the corpse are cut off"
        );
        assert_eq!(tree.coverage(), 1);
        assert!(tree.children(NodeId(0)).is_empty());
    }

    #[test]
    fn dissemination_follows_route_repair() {
        // The repaired routes reroute around the corpse; the rebuilt tree
        // must span the survivors through the detour.
        let topo = Topology::grid(3, 10.0);
        let repaired = Routes::shortest_hop_excluding(&topo, 10.0, &[NodeId(1)]);
        let tree = Dissemination::from_routes(&repaired, NodeId(0));
        assert_eq!(tree.coverage(), 8, "everyone but the corpse");
        assert!(!tree.subtree(NodeId(0)).contains(&NodeId(1)));
        // Node 2 (whose straight-line parent died) hangs off the detour.
        assert!(tree.contains(NodeId(2)));
    }

    #[test]
    fn shortcut_learning() {
        let mut t = ShortcutTable::new();
        assert!(t.is_empty());
        let dst = NodeId(0);
        t.learn(dst, NodeId(3));
        assert_eq!(t.shortcut(dst), Some(NodeId(3)));
        // Later overhearing replaces the entry ("the last node that
        // forwards the packet is set as the next-hop").
        t.learn(dst, NodeId(1));
        assert_eq!(t.shortcut(dst), Some(NodeId(1)));
        assert_eq!(t.len(), 1);
        t.invalidate(dst);
        assert_eq!(t.shortcut(dst), None);
    }

    #[test]
    fn invalidate_via_drops_routes_through_a_corpse() {
        let mut t = ShortcutTable::new();
        t.learn(NodeId(0), NodeId(3));
        t.learn(NodeId(7), NodeId(3));
        t.learn(NodeId(9), NodeId(4));
        t.invalidate_via(NodeId(3));
        assert_eq!(t.shortcut(NodeId(0)), None);
        assert_eq!(t.shortcut(NodeId(7)), None);
        assert_eq!(t.shortcut(NodeId(9)), Some(NodeId(4)), "other vias survive");
    }
}
