//! Received-power propagation: log-distance path loss with per-link
//! log-normal shadowing, and the SINR capture rule built on it.
//!
//! The disk model treats every link inside `range_m` as perfect and
//! every link outside as absent. This module is the alternative the
//! `phys = logn:…` profile switches on: each radio class's link budget
//! (`tx_power_dbm`, `rx_sensitivity_dbm`, `noise_floor_dbm`) plus a
//! path-loss exponent and a shadowing sigma produce a *received power*
//! per link, and reception becomes an SINR decision — the strongest
//! frame at a receiver survives overlap when its margin over the sum of
//! interferers and noise clears [`CAPTURE_THRESHOLD_DB`] (the capture
//! effect), instead of every overlap corrupting everyone.
//!
//! The path loss is calibrated per class so that at the profile's
//! `range_m` the received power equals the receive sensitivity exactly:
//! with `sigma_db = 0` the decodable set equals the disk neighbourhood,
//! and shadowing perturbs links around that baseline. Shadowing offsets
//! are drawn once per unordered node pair from a dedicated seeded stream
//! in canonical pair order, so they are identical for every shard and
//! thread count, and clamped at ±[`SHADOW_CLAMP_SIGMAS`]·σ so the
//! audibility radius that bounds the neighbour index is finite.

use crate::addr::NodeId;
use bcp_sim::rng::Rng;

/// Which physical layer a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PhysModel {
    /// Unit-disk links: perfect inside `range_m`, absent outside, any
    /// overlap at a receiver corrupts the locked frame.
    #[default]
    Disk,
    /// Log-distance path loss with log-normal shadowing and SINR capture.
    LogNormal {
        /// Path-loss exponent (free space 2.0; cluttered 3–4).
        path_loss_exp: f64,
        /// Standard deviation of the per-link shadowing, dB.
        sigma_db: f64,
        /// Seed of the dedicated shadowing stream; `None` derives one
        /// from the scenario's master seed.
        seed: Option<u64>,
    },
}

impl PhysModel {
    /// `true` for the unit-disk model.
    pub fn is_disk(&self) -> bool {
        matches!(self, PhysModel::Disk)
    }
}

/// Capture margin: a frame decodes through interference when its power
/// exceeds the sum of all other audible frames plus the noise floor by
/// this many dB (a common figure for narrowband capture-capable radios).
pub const CAPTURE_THRESHOLD_DB: f64 = 10.0;

/// Shadowing draws are clamped to ±this many sigmas. The clamp keeps the
/// best-case link budget — and with it the audibility radius bounding
/// the neighbour index and the conservative lookahead — finite.
pub const SHADOW_CLAMP_SIGMAS: f64 = 3.0;

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Log-distance path loss, calibrated against a link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    /// Path-loss exponent.
    pub exp: f64,
    /// Loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
}

impl PathLoss {
    /// Calibrates the model so a receiver at exactly `range_m` sees
    /// `rx_sensitivity_dbm`: `PL(range) = tx − sens`. With zero
    /// shadowing the decodable neighbourhood then equals the disk
    /// neighbourhood at `range_m`.
    ///
    /// # Panics
    ///
    /// Panics unless the exponent and range are positive and finite and
    /// the budget has positive headroom (`tx > sens`).
    pub fn calibrated(exp: f64, tx_dbm: f64, rx_sensitivity_dbm: f64, range_m: f64) -> Self {
        assert!(exp.is_finite() && exp > 0.0, "bad path-loss exponent {exp}");
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "bad calibration range {range_m}"
        );
        let headroom = tx_dbm - rx_sensitivity_dbm;
        assert!(
            headroom.is_finite() && headroom > 0.0,
            "link budget has no headroom (tx {tx_dbm} dBm, sensitivity {rx_sensitivity_dbm} dBm)"
        );
        PathLoss {
            exp,
            ref_loss_db: headroom - 10.0 * exp * (range_m.max(1.0)).log10(),
        }
    }

    /// Path loss at `d_m` metres, dB. Distances under the 1 m reference
    /// clamp to it (the near field is not modelled).
    pub fn loss_db(&self, d_m: f64) -> f64 {
        self.ref_loss_db + 10.0 * self.exp * d_m.max(1.0).log10()
    }

    /// The distance at which a transmitter at `tx_dbm`, boosted by
    /// `boost_db` (e.g. the shadowing clamp), fades to `floor_dbm` —
    /// the audibility radius when `floor_dbm` is the noise floor.
    pub fn radius_to(&self, tx_dbm: f64, floor_dbm: f64, boost_db: f64) -> f64 {
        let d = 10f64.powf((tx_dbm + boost_db - floor_dbm - self.ref_loss_db) / (10.0 * self.exp));
        d.max(1.0)
    }
}

/// Per-link shadowing offsets (dB), one per unordered node pair,
/// symmetric, drawn in canonical pair order from a dedicated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowMap {
    n: usize,
    offsets: Vec<f64>,
}

impl ShadowMap {
    /// Draws the map for `n` nodes at `sigma_db` from `rng`: pairs in
    /// `(0,1), (0,2) … (0,n−1), (1,2) …` order, one Gaussian each,
    /// clamped at ±[`SHADOW_CLAMP_SIGMAS`]·σ. `sigma_db = 0` draws
    /// nothing and every offset is zero (the calibrated baseline).
    pub fn draw(n: usize, sigma_db: f64, rng: &mut Rng) -> Self {
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "bad shadowing sigma {sigma_db}"
        );
        let pairs = n * n.saturating_sub(1) / 2;
        let offsets = if sigma_db == 0.0 {
            vec![0.0; pairs]
        } else {
            let clamp = SHADOW_CLAMP_SIGMAS * sigma_db;
            (0..pairs)
                .map(|_| (sigma_db * gaussian(rng)).clamp(-clamp, clamp))
                .collect()
        };
        ShadowMap { n, offsets }
    }

    /// Rebuilds a map from captured offsets (the checkpoint-restore path).
    ///
    /// # Panics
    ///
    /// Panics if the offset count is not `n·(n−1)/2`.
    pub fn from_offsets(n: usize, offsets: Vec<f64>) -> Self {
        assert_eq!(
            offsets.len(),
            n * n.saturating_sub(1) / 2,
            "offset count does not match {n} nodes"
        );
        ShadowMap { n, offsets }
    }

    /// The raw offsets, in canonical pair order (for checkpointing).
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// The shadowing offset of the `a`↔`b` link, dB. Symmetric; zero for
    /// a node and itself.
    pub fn offset(&self, a: NodeId, b: NodeId) -> f64 {
        let (a, b) = (a.index(), b.index());
        if a == b {
            return 0.0;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Index of (lo, hi) in lexicographic unordered-pair order.
        self.offsets[lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)]
    }
}

/// A standard normal draw (Box–Muller; two uniforms per draw, so the
/// stream advances deterministically).
fn gaussian(rng: &mut Rng) -> f64 {
    let u1 = 1.0 - rng.f64(); // (0, 1]: keeps the log finite
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_sensitivity_at_range() {
        let pl = PathLoss::calibrated(3.0, 0.0, -94.0, 40.0);
        let rx_at_range = 0.0 - pl.loss_db(40.0);
        assert!((rx_at_range - -94.0).abs() < 1e-9, "rx {rx_at_range}");
        // Closer is stronger, farther is weaker, monotonically.
        assert!(0.0 - pl.loss_db(10.0) > -94.0);
        assert!(0.0 - pl.loss_db(80.0) < -94.0);
    }

    #[test]
    fn radius_inverts_the_loss() {
        let pl = PathLoss::calibrated(3.0, 0.0, -94.0, 40.0);
        // At the sensitivity floor with no boost, the radius is the
        // calibration range.
        let r = pl.radius_to(0.0, -94.0, 0.0);
        assert!((r - 40.0).abs() < 1e-9, "r {r}");
        // A lower floor (the noise floor) and a shadowing boost both
        // push the radius out.
        assert!(pl.radius_to(0.0, -100.0, 0.0) > r);
        assert!(pl.radius_to(0.0, -94.0, 6.0) > r);
    }

    #[test]
    fn near_field_clamps_to_one_metre() {
        let pl = PathLoss::calibrated(2.0, 0.0, -90.0, 40.0);
        assert_eq!(pl.loss_db(0.2), pl.loss_db(1.0));
        assert_eq!(pl.loss_db(0.0), pl.loss_db(1.0));
    }

    #[test]
    #[should_panic(expected = "no headroom")]
    fn calibration_rejects_an_upside_down_budget() {
        let _ = PathLoss::calibrated(2.0, -94.0, 0.0, 40.0);
    }

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-100.0, -30.0, 0.0, 15.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-12);
        }
        assert_eq!(dbm_to_mw(0.0), 1.0);
    }

    #[test]
    fn shadow_map_is_symmetric_and_seeded() {
        let mut rng = Rng::new(42);
        let m = ShadowMap::draw(6, 4.0, &mut rng);
        let mut rng2 = Rng::new(42);
        let m2 = ShadowMap::draw(6, 4.0, &mut rng2);
        assert_eq!(m, m2, "same seed, same map");
        let mut nonzero = 0;
        for a in 0..6u32 {
            for b in 0..6u32 {
                let o = m.offset(NodeId(a), NodeId(b));
                assert_eq!(o, m.offset(NodeId(b), NodeId(a)), "symmetry");
                if a == b {
                    assert_eq!(o, 0.0, "self link");
                } else {
                    assert!(o.abs() <= SHADOW_CLAMP_SIGMAS * 4.0, "clamped");
                    nonzero += usize::from(o != 0.0);
                }
            }
        }
        assert!(nonzero > 0, "sigma > 0 actually shadows");
    }

    #[test]
    fn zero_sigma_is_the_calibrated_baseline() {
        let mut rng = Rng::new(1);
        let before = rng.state();
        let m = ShadowMap::draw(5, 0.0, &mut rng);
        assert_eq!(rng.state(), before, "no draws at sigma 0");
        assert!(m.offsets().iter().all(|&o| o == 0.0));
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = Rng::new(7);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shadow_map_round_trips_through_raw_offsets() {
        let mut rng = Rng::new(9);
        let m = ShadowMap::draw(8, 6.0, &mut rng);
        let back = ShadowMap::from_offsets(8, m.offsets().to_vec());
        assert_eq!(m, back);
    }
}
