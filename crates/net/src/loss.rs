//! Link loss models.
//!
//! The paper's analysis assumes loss-free links (`n_i = 1`) but its
//! simulation "accounts for the impact of packet losses". Collisions are
//! modelled by the channel itself; these models add *channel-quality*
//! losses on top: independent (Bernoulli) or bursty (Gilbert–Elliott).

use bcp_sim::rng::Rng;

/// Stateful per-link loss process.
///
/// # Examples
///
/// ```
/// use bcp_net::loss::LossModel;
/// use bcp_sim::rng::Rng;
///
/// let mut rng = Rng::new(1);
/// let mut perfect = LossModel::Perfect;
/// assert!(!perfect.is_lost(&mut rng));
///
/// let mut lossy = LossModel::bernoulli(1.0);
/// assert!(lossy.is_lost(&mut rng));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LossModel {
    /// No channel losses (collisions may still occur).
    #[default]
    Perfect,
    /// Each frame lost independently with probability `p`.
    Bernoulli {
        /// Per-frame loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state bursty channel: a good state with low loss and a bad state
    /// with high loss, switching with the given per-frame probabilities.
    GilbertElliott {
        /// P(good → bad) evaluated per frame.
        p_g2b: f64,
        /// P(bad → good) evaluated per frame.
        p_b2g: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state (`true` = bad).
        in_bad: bool,
    },
}

impl LossModel {
    /// Independent losses with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn bernoulli(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        LossModel::Bernoulli { p }
    }

    /// A bursty channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics unless all probabilities are in `[0, 1]`.
    pub fn gilbert_elliott(p_g2b: f64, p_b2g: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_g2b, p_b2g, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        LossModel::GilbertElliott {
            p_g2b,
            p_b2g,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// Evaluates the loss process for one frame; advances burst state.
    pub fn is_lost(&mut self, rng: &mut Rng) -> bool {
        match self {
            LossModel::Perfect => false,
            LossModel::Bernoulli { p } => rng.bernoulli(*p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
                in_bad,
            } => {
                // Advance the Markov chain, then sample loss in the new state.
                let flip = if *in_bad {
                    rng.bernoulli(*p_b2g)
                } else {
                    rng.bernoulli(*p_g2b)
                };
                if flip {
                    *in_bad = !*in_bad;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.bernoulli(p)
            }
        }
    }

    /// Long-run loss probability of the process (stationary average).
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::Perfect => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
                ..
            } => {
                if *p_g2b == 0.0 && *p_b2g == 0.0 {
                    return *loss_good; // never leaves the initial good state
                }
                let frac_bad = p_g2b / (p_g2b + p_b2g);
                loss_bad * frac_bad + loss_good * (1.0 - frac_bad)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_loses() {
        let mut rng = Rng::new(1);
        let mut m = LossModel::Perfect;
        assert!((0..1000).all(|_| !m.is_lost(&mut rng)));
        assert_eq!(m.mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = Rng::new(2);
        let mut m = LossModel::bernoulli(0.2);
        let n = 100_000;
        let losses = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let freq = losses as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
        assert_eq!(m.mean_loss(), 0.2);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(3);
        assert!(!LossModel::bernoulli(0.0).is_lost(&mut rng));
        assert!(LossModel::bernoulli(1.0).is_lost(&mut rng));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut rng = Rng::new(4);
        let mut m = LossModel::gilbert_elliott(0.1, 0.3, 0.01, 0.5);
        let n = 200_000;
        let losses = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let freq = losses as f64 / n as f64;
        let expect = m.mean_loss(); // 0.25·0.5 + 0.75·0.01 ≈ 0.1325
        assert!((freq - expect).abs() < 0.01, "freq {freq} vs {expect}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Consecutive losses should be far more correlated than Bernoulli
        // at the same mean rate: compare P(loss | previous loss).
        let mut rng = Rng::new(5);
        let mut m = LossModel::gilbert_elliott(0.02, 0.1, 0.0, 0.9);
        let outcomes: Vec<bool> = (0..200_000).map(|_| m.is_lost(&mut rng)).collect();
        let mean = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        assert!(
            cond > 2.0 * mean,
            "bursty channel: P(loss|loss)={cond} should exceed 2×mean={mean}"
        );
    }

    #[test]
    fn mean_loss_degenerate_chain() {
        let m = LossModel::gilbert_elliott(0.0, 0.0, 0.05, 0.9);
        assert_eq!(m.mean_loss(), 0.05, "never leaves good state");
    }
}
