//! Link loss models.
//!
//! The paper's analysis assumes loss-free links (`n_i = 1`) but its
//! simulation "accounts for the impact of packet losses". Collisions are
//! modelled by the channel itself; these models add *channel-quality*
//! losses on top: independent (Bernoulli) or bursty (Gilbert–Elliott).
//!
//! A [`LossModel`] is pure configuration — evaluating it never mutates
//! it. The Gilbert–Elliott burst position lives in a separate per-link
//! [`LossState`], owned by whoever runs the process (the simulator's
//! channel keeps one per receiver). Keeping the Markov state out of the
//! config enum means a `Scenario` embedding a `LossModel` compares and
//! re-emits identically before and after a run.

use bcp_sim::rng::Rng;

/// Per-link runtime state of a loss process: the Gilbert–Elliott burst
/// position (`true` = currently in the bad state). The memoryless models
/// carry no state and ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossState {
    /// Current Gilbert–Elliott state (`true` = bad).
    pub in_bad: bool,
}

/// Per-link loss process configuration (immutable; see [`LossState`] for
/// the runtime side).
///
/// # Examples
///
/// ```
/// use bcp_net::loss::{LossModel, LossState};
/// use bcp_sim::rng::Rng;
///
/// let mut rng = Rng::new(1);
/// let mut state = LossState::default();
/// let perfect = LossModel::Perfect;
/// assert!(!perfect.is_lost(&mut state, &mut rng));
///
/// let lossy = LossModel::bernoulli(1.0);
/// assert!(lossy.is_lost(&mut state, &mut rng));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LossModel {
    /// No channel losses (collisions may still occur).
    #[default]
    Perfect,
    /// Each frame lost independently with probability `p`.
    Bernoulli {
        /// Per-frame loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state bursty channel: a good state with low loss and a bad state
    /// with high loss, switching with the given per-frame probabilities.
    /// Every link starts in the good state.
    GilbertElliott {
        /// P(good → bad) evaluated per frame.
        p_g2b: f64,
        /// P(bad → good) evaluated per frame.
        p_b2g: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Independent losses with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    pub fn bernoulli(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        LossModel::Bernoulli { p }
    }

    /// A bursty channel (links start in the good state).
    ///
    /// # Panics
    ///
    /// Panics unless all probabilities are in `[0, 1]`.
    pub fn gilbert_elliott(p_g2b: f64, p_b2g: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_g2b, p_b2g, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        LossModel::GilbertElliott {
            p_g2b,
            p_b2g,
            loss_good,
            loss_bad,
        }
    }

    /// Evaluates the loss process for one frame, advancing the link's
    /// burst `state` in place. The model itself is never mutated.
    pub fn is_lost(&self, state: &mut LossState, rng: &mut Rng) -> bool {
        match self {
            LossModel::Perfect => false,
            LossModel::Bernoulli { p } => rng.bernoulli(*p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // Advance the Markov chain, then sample loss in the new state.
                let flip = if state.in_bad {
                    rng.bernoulli(*p_b2g)
                } else {
                    rng.bernoulli(*p_g2b)
                };
                if flip {
                    state.in_bad = !state.in_bad;
                }
                let p = if state.in_bad { *loss_bad } else { *loss_good };
                rng.bernoulli(p)
            }
        }
    }

    /// Long-run loss probability of the process (stationary average).
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::Perfect => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                if *p_g2b == 0.0 && *p_b2g == 0.0 {
                    return *loss_good; // never leaves the initial good state
                }
                let frac_bad = p_g2b / (p_g2b + p_b2g);
                loss_bad * frac_bad + loss_good * (1.0 - frac_bad)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(m: &LossModel, seed: u64, n: usize) -> Vec<bool> {
        let mut rng = Rng::new(seed);
        let mut st = LossState::default();
        (0..n).map(|_| m.is_lost(&mut st, &mut rng)).collect()
    }

    #[test]
    fn perfect_never_loses() {
        let m = LossModel::Perfect;
        assert!(drive(&m, 1, 1000).iter().all(|&l| !l));
        assert_eq!(m.mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let m = LossModel::bernoulli(0.2);
        let n = 100_000;
        let losses = drive(&m, 2, n).iter().filter(|&&l| l).count();
        let freq = losses as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
        assert_eq!(m.mean_loss(), 0.2);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(3);
        let mut st = LossState::default();
        assert!(!LossModel::bernoulli(0.0).is_lost(&mut st, &mut rng));
        assert!(LossModel::bernoulli(1.0).is_lost(&mut st, &mut rng));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_p() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let m = LossModel::gilbert_elliott(0.1, 0.3, 0.01, 0.5);
        let n = 200_000;
        let losses = drive(&m, 4, n).iter().filter(|&&l| l).count();
        let freq = losses as f64 / n as f64;
        let expect = m.mean_loss(); // 0.25·0.5 + 0.75·0.01 ≈ 0.1325
        assert!((freq - expect).abs() < 0.01, "freq {freq} vs {expect}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Consecutive losses should be far more correlated than Bernoulli
        // at the same mean rate: compare P(loss | previous loss).
        let m = LossModel::gilbert_elliott(0.02, 0.1, 0.0, 0.9);
        let outcomes = drive(&m, 5, 200_000);
        let mean = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        assert!(
            cond > 2.0 * mean,
            "bursty channel: P(loss|loss)={cond} should exceed 2×mean={mean}"
        );
    }

    #[test]
    fn evaluation_never_mutates_the_model() {
        // The config/state split's whole point: driving the process
        // leaves the model equal to a fresh copy, with all the evolution
        // in the caller-owned LossState.
        let m = LossModel::gilbert_elliott(0.3, 0.3, 0.0, 1.0);
        let pristine = m.clone();
        let mut rng = Rng::new(6);
        let mut st = LossState::default();
        let mut visited_bad = false;
        for _ in 0..10_000 {
            m.is_lost(&mut st, &mut rng);
            visited_bad |= st.in_bad;
        }
        assert_eq!(m, pristine, "the model is pure config");
        assert!(visited_bad, "the state did evolve");
    }

    #[test]
    fn mean_loss_degenerate_chain() {
        let m = LossModel::gilbert_elliott(0.0, 0.0, 0.05, 0.9);
        assert_eq!(m.mean_loss(), 0.05, "never leaves good state");
    }
}
