//! # bcp-net — topology, loss models, routing and addressing
//!
//! The network substrate under the BCP simulator:
//!
//! * [`addr`] — node identities and the low↔high radio address map BCP
//!   needs for its wake-up handshake.
//! * [`topo`] — node placements: the paper's 6×6/40 m grid, the 200 m
//!   multi-hop line, and random fields.
//! * [`loss`] — channel loss processes (perfect, Bernoulli,
//!   Gilbert–Elliott bursts).
//! * [`propagation`] — received-power links: log-distance path loss,
//!   per-link log-normal shadowing, and the SINR capture rule behind the
//!   `phys = logn:…` profile.
//! * [`routing`] — deterministic all-pairs shortest-hop routes per radio
//!   (the paper's "two separate trees") and the learned high-radio
//!   [`ShortcutTable`] of Section 3.
//! * [`partition`] — spatial strip partitioning of a topology into shards
//!   for the multi-core conservative simulator.
//!
//! # Examples
//!
//! The paper's two evaluation geometries:
//!
//! ```
//! use bcp_net::addr::NodeId;
//! use bcp_net::routing::Routes;
//! use bcp_net::topo::Topology;
//!
//! // Single-hop study: 6×6 grid; sensor radio and Lucent-11 both 40 m.
//! let grid = Topology::grid(6, 40.0);
//! let sensor = Routes::shortest_hop(&grid, 40.0);
//! assert_eq!(sensor.hops(NodeId(35), NodeId(0)), Some(10));
//!
//! // Multi-hop study: Cabletron's 250 m reaches a central sink in one hop.
//! let dot11 = Routes::shortest_hop(&grid, 250.0);
//! assert_eq!(dot11.hops(NodeId(35), NodeId(14)), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod loss;
pub mod partition;
pub mod propagation;
pub mod routing;
pub mod topo;

pub use addr::{AddrMap, HighAddr, LowAddr, NodeId};
pub use loss::{LossModel, LossState};
pub use partition::Partition;
pub use propagation::{PathLoss, PhysModel, ShadowMap};
pub use routing::{Routes, ShortcutTable};
pub use topo::{Position, Topology};
