//! Forked battery sweeps: one battery-independent warm prefix shared by
//! every cell of a capacity grid.
//!
//! A lifetime sweep re-simulates the same opening seconds once per
//! battery capacity; under shortest-hop routing those prefixes are
//! physically identical — the battery only matters once something can
//! die. [`battery_sweep`] runs the prefix once on mains power, snapshots
//! it, and [`bcp_simnet::fork_with_power`]s one branch per capacity.
//! Cells the fork guards reject (energy-aware routing, or a prefix whose
//! metered spend already exceeds the cell's battery) fall back to cold
//! runs — results are identical either way, only the wall clock differs.

use bcp_power::{Battery, PowerConfig};
use bcp_sim::time::{SimDuration, SimTime};
use bcp_simnet::{fork_with_power, LiveWorld, RunOptions, RunStats, Scenario, World};

/// One capacity grid evaluated against a shared warm prefix.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per capacity, in input order.
    pub stats: Vec<RunStats>,
    /// How many cells actually branched from the shared prefix; the rest
    /// ran cold from `t = 0`.
    pub forked_cells: usize,
}

/// Evaluates `caps` (ideal-battery joules per node, mains-powered sink)
/// against `base` — which must be unpowered — sharing the first `warm`
/// of simulated time across every cell.
///
/// A `warm` of zero (or one reaching the horizon) skips the prefix and
/// runs every cell cold; so does any cell the fork guards reject. The
/// sweep's results never depend on which path a cell took.
pub fn battery_sweep(base: &Scenario, warm: SimDuration, caps: &[f64]) -> SweepOutcome {
    let opts = RunOptions::default();
    let snap = (warm > SimDuration::ZERO && warm < base.duration).then(|| {
        let mut lw = World::build(base, &opts);
        lw.run_to(SimTime::ZERO + warm);
        lw.snapshot()
    });
    let mut stats = Vec::with_capacity(caps.len());
    let mut forked_cells = 0usize;
    for &cap in caps {
        let power = PowerConfig::with_battery(Battery::ideal_joules(cap));
        let branch = snap
            .as_ref()
            .and_then(|s| fork_with_power(s, power.clone()).ok());
        match branch {
            Some(state) => {
                forked_cells += 1;
                stats.push(LiveWorld::restore(&state, &opts).finish().stats);
            }
            None => {
                let mut cold = base.clone();
                cold.power = power;
                stats.push(cold.run());
            }
        }
    }
    SweepOutcome {
        stats,
        forked_cells,
    }
}

/// [`battery_sweep`] for a batch of base scenarios (typically one per
/// seed), fanned across the worker pool, results in input order.
pub fn battery_sweeps(bases: &[Scenario], warm: SimDuration, caps: &[f64]) -> Vec<SweepOutcome> {
    let n_workers = bcp_sim::threads::worker_count(bases.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<SweepOutcome>>> =
        bases.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= bases.len() {
                    break;
                }
                let outcome = battery_sweep(&bases[i], warm, caps);
                *results[i].lock().expect("result lock") = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("lock").expect("sweep ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_simnet::ModelKind;

    fn base(model: ModelKind) -> Scenario {
        Scenario::single_hop(model, 5, 10, 3).with_duration(SimDuration::from_secs(60))
    }

    fn cold(base: &Scenario, cap: f64) -> RunStats {
        let mut s = base.clone();
        s.power = PowerConfig::with_battery(Battery::ideal_joules(cap));
        s.run()
    }

    fn assert_same(a: &RunStats, b: &RunStats, what: &str) {
        assert_eq!(
            a.metrics.node_deaths, b.metrics.node_deaths,
            "{what}: deaths"
        );
        assert_eq!(
            a.delivered_before_first_death, b.delivered_before_first_death,
            "{what}: deliveries before death"
        );
        assert_eq!(
            a.metrics.delivered_packets, b.metrics.delivered_packets,
            "{what}: deliveries"
        );
        // Death instants accumulate battery draw along different float
        // summation orders on the two paths; anything beyond summation
        // noise is a real divergence.
        match (a.time_to_first_death_s, b.time_to_first_death_s) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6, "{what}: ttfd {x} vs {y}"),
            (x, y) => panic!("{what}: ttfd {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn forked_cells_match_cold_runs() {
        // Capacities as fractions of the idle budget, the lifetime
        // experiment's axis: deaths land inside the run, and the 6 s
        // prefix spends well under the smallest cell.
        let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
        let caps: Vec<f64> = [0.3, 0.6].iter().map(|f| f * idle_w * 60.0).collect();
        let b = base(ModelKind::Sensor);
        let out = battery_sweep(&b, SimDuration::from_secs(6), &caps);
        assert_eq!(out.forked_cells, caps.len(), "every cell is fork-eligible");
        for (i, &cap) in caps.iter().enumerate() {
            let reference = cold(&b, cap);
            assert_same(&out.stats[i], &reference, "cell");
            assert!(
                out.stats[i].metrics.node_deaths > 0,
                "the grid exercises death"
            );
        }
    }

    #[test]
    fn starved_cells_fall_back_to_cold() {
        // 802.11 idles at ~0.83 W: a 6 s prefix outspends a sensor-sized
        // battery many times over, so every cell trips the
        // `PrefixExceedsBattery` guard — and must still match cold runs.
        let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
        let caps: Vec<f64> = [0.3, 0.6].iter().map(|f| f * idle_w * 60.0).collect();
        let b = base(ModelKind::Dot11);
        let out = battery_sweep(&b, SimDuration::from_secs(6), &caps);
        assert_eq!(out.forked_cells, 0, "every cell outspent its battery");
        for (i, &cap) in caps.iter().enumerate() {
            assert_same(&out.stats[i], &cold(&b, cap), "fallback cell");
        }
    }

    #[test]
    fn batch_sweep_preserves_order() {
        let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
        let caps = [0.4 * idle_w * 60.0];
        let bases = vec![base(ModelKind::Sensor), base(ModelKind::Dot11)];
        let outs = battery_sweeps(&bases, SimDuration::from_secs(6), &caps);
        assert_eq!(outs.len(), 2);
        for (b, out) in bases.iter().zip(&outs) {
            assert_same(&out.stats[0], &cold(b, caps[0]), "batched cell");
        }
    }
}
