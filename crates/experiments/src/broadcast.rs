//! Broadcast-lifetime experiment: the paper's bulk-over-high-radio
//! trade-off applied to its dual problem, sink-to-all *dissemination*
//! (Lipiński's maximum-lifetime broadcasting).
//!
//! Every node gets the same finite battery and the centre node floods
//! the grid. The sweep compares **flooding over the low radio** (the
//! sensor stack: every tree hop is a per-packet relay, every radio
//! listens always-on) against **bulk relay over the high radio** (BCP:
//! relays buffer the flood until the burst threshold, then move it in
//! one high-radio burst per tree child), across battery capacities and
//! burst sizes. Reported per point: time to first node death, with the
//! per-run reach fraction guarding that the comparison only counts runs
//! that actually disseminated.

use crate::output::Output;
use crate::registry::RunCtx;
use crate::suite::{run_parallel, Quality};
use bcp_net::addr::NodeId;
use bcp_power::Battery;
use bcp_sim::stats::{mean_ci95, Series};
use bcp_simnet::{ModelKind, Scenario, ScenarioBuilder, TrafficPattern};

/// The battery-capacity axis (J): fractions of a MicaZ node's always-on
/// idle budget over the horizon, so deaths land inside the run at every
/// quality (the same framing as the convergecast `lifetime` sweep).
fn capacities(q: Quality) -> Vec<f64> {
    let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
    let horizon = q.duration().as_secs_f64();
    let fractions: &[f64] = match q {
        Quality::Test => &[0.3, 0.6],
        _ => &[0.2, 0.4, 0.6, 0.8],
    };
    fractions.iter().map(|f| f * idle_w * horizon).collect()
}

/// One dissemination strategy of the sweep.
struct Strategy {
    label: &'static str,
    model: ModelKind,
    burst_packets: usize,
}

fn build(s: &Strategy, cap: f64, q: Quality, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .model(s.model)
        .traffic(TrafficPattern::Broadcast { source: NodeId(14) })
        .burst_packets(s.burst_packets)
        .rate_bps(1_000.0)
        .duration(q.duration())
        .battery(Battery::ideal_joules(cap))
        .seed(seed)
        .build()
        .expect("the broadcast-lifetime grid is valid")
}

/// The registered `broadcast_lifetime` experiment.
pub fn broadcast_lifetime(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let horizon = q.duration().as_secs_f64();
    // Flooding on the low radio vs bulk on the high radio at two burst
    // sizes (the burst knob only matters to the BCP strategies).
    let strategies = [
        Strategy {
            label: "Flood-low",
            model: ModelKind::Sensor,
            burst_packets: 10,
        },
        Strategy {
            label: "Bulk-high-100",
            model: ModelKind::DualRadio,
            burst_packets: 100,
        },
        Strategy {
            label: "Bulk-high-500",
            model: ModelKind::DualRadio,
            burst_packets: 500,
        },
    ];
    let caps = capacities(q);
    let mut series = Vec::new();
    let mut survived = 0usize;
    let mut low_reach = 0usize;
    for s in &strategies {
        let mut line = Series::new(s.label);
        for &cap in &caps {
            let jobs: Vec<Scenario> = (0..q.runs() as u64)
                .map(|seed| build(s, cap, q, seed + 1))
                .collect();
            let stats = run_parallel(jobs);
            let ttfd: Vec<f64> = stats
                .iter()
                .map(|r| {
                    if r.time_to_first_death_s.is_none() {
                        survived += 1;
                    }
                    if r.broadcast_reach.unwrap_or(0.0) < 0.5 {
                        low_reach += 1;
                    }
                    // Censor survivors at the horizon: "lived at least
                    // this long" still orders the strategies.
                    r.time_to_first_death_s.unwrap_or(horizon)
                })
                .collect();
            let (mean, ci) = mean_ci95(&ttfd);
            line.push_with_ci(cap, mean, ci);
        }
        series.push(line);
    }
    let mut notes = vec![
        "sink-to-all dissemination from the grid centre; every node carries \
         the same ideal battery (the source is mains-powered)"
            .into(),
        format!(
            "{} runs per point, {} s horizon; y = time to first node death",
            q.runs(),
            horizon
        ),
    ];
    if survived > 0 {
        notes.push(format!(
            "{survived} run(s) ended with every node alive; censored at the horizon"
        ));
    }
    if low_reach > 0 {
        notes.push(format!(
            "{low_reach} run(s) reached under half the grid before dying"
        ));
    }
    Output::Figure {
        xlabel: "battery_J".into(),
        ylabel: "Time to first death (s)".into(),
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_lifetime_renders_and_orders_strategies() {
        let out = broadcast_lifetime(&RunCtx::new(Quality::Test));
        let Output::Figure { series, notes, .. } = &out else {
            panic!("broadcast_lifetime renders a figure");
        };
        assert_eq!(series.len(), 3, "one line per dissemination strategy");
        for s in series {
            assert_eq!(s.points().len(), capacities(Quality::Test).len());
            for &(cap, ttfd, _) in s.points() {
                assert!(cap > 0.0);
                assert!(ttfd > 0.0, "{}: deaths (or censoring) recorded", s.label());
            }
        }
        assert!(notes.iter().any(|n| n.contains("dissemination")));
    }
}
