//! `repro` — regenerate the paper's tables and figures, and run scenario
//! files.
//!
//! ```text
//! repro list
//! repro all [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]
//! repro <id>... [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]
//! repro run <file.scn> [--test] [--out <dir>]
//!           [--trace <file>] [--trace-filter <cats>]
//!           [--series <file>] [--series-every <secs>]
//! repro bench [--quick|--full] [--out <file>]
//! repro bench --compare <old.json> <new.json> [--tolerance <pct>]
//! ```
//!
//! * `repro <id>` prints the gnuplot-ready text rendering; `--json` emits
//!   the structured form instead (and, with `--out`, persists `.txt`,
//!   `.json` and `.csv` artifacts per experiment).
//! * `repro run` executes any `.scn` scenario file (see the README's
//!   "Scenario files" section) and prints the run's `RunStats` as JSON;
//!   `--test` clamps the simulated duration to 60 s for smoke tests.
//!   `--trace` additionally writes the flight-recorder trace as NDJSON
//!   (one record per line; `--trace-filter` keeps only the named
//!   comma-separated categories out of `pkt,radio,power,route`), and
//!   `--series` writes one NDJSON delta sample per `--series-every`
//!   seconds of sim time (default 1). Neither switch perturbs the run:
//!   the printed `RunStats` are bit-identical either way.
//! * `repro bench` times the canonical node × shard grid end to end and
//!   prints `{"rev":...,"cells":[...]}`; check the output in as
//!   `BENCH_<rev>.json` to track engine throughput across revisions.
//!   `--quick` (the default quality) runs the CI-sized corner of the
//!   grid; `--full` runs the whole matrix. `--compare` instead diffs two
//!   checked-in documents cell by cell and exits nonzero when any cell
//!   regressed more than `--tolerance` percent (default 10).

use bcp_experiments::bench::{
    bench_grid, bench_json, compare, git_rev, parse_bench, render_compare,
};
use bcp_experiments::{all, find, Output, Quality, RunCtx};
use bcp_sim::time::SimDuration;
use bcp_sim::trace::TraceCat;
use bcp_simnet::{parse_spec, RunOptions};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    quality: Quality,
    json: bool,
    out_dir: Option<PathBuf>,
    /// `repro run <file>`: the scenario file.
    scn: Option<PathBuf>,
    /// Experiment ids (order-preserving, deduplicated).
    ids: Vec<String>,
    list: bool,
    /// `repro bench`: run the throughput grid instead of experiments.
    bench: bool,
    /// `repro run --trace <file>`: write the flight-recorder NDJSON here.
    trace: Option<PathBuf>,
    /// `--trace-filter`: keep only these categories (empty = all).
    trace_filter: Vec<TraceCat>,
    /// `repro run --series <file>`: write per-window NDJSON samples here.
    series: Option<PathBuf>,
    /// `--series-every <secs>` (default 1 s when `--series` is given).
    series_every: Option<f64>,
    /// `repro bench --compare <old> <new>`: diff two bench documents.
    compare: Option<(PathBuf, PathBuf)>,
    /// `--tolerance <pct>` for `--compare` (default 10%).
    tolerance: f64,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quality: Quality::Quick,
        json: false,
        out_dir: None,
        scn: None,
        ids: Vec::new(),
        list: false,
        bench: false,
        trace: None,
        trace_filter: Vec::new(),
        series: None,
        series_every: None,
        compare: None,
        tolerance: 10.0,
    };
    let run_mode = args.first().map(String::as_str) == Some("run");
    let bench_mode = args.first().map(String::as_str) == Some("bench");
    cli.bench = bench_mode;
    let mut i = usize::from(run_mode || bench_mode);
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => cli.quality = Quality::Quick,
            "--paper" | "--full" => cli.quality = Quality::Paper,
            "--paper-lite" => cli.quality = Quality::PaperLite,
            "--test" => cli.quality = Quality::Test,
            "--json" => cli.json = true,
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--out needs a directory".to_string())?;
                cli.out_dir = Some(PathBuf::from(dir));
            }
            "--trace" if run_mode => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--trace needs a file".to_string())?;
                cli.trace = Some(PathBuf::from(f));
            }
            "--trace-filter" if run_mode => {
                i += 1;
                let cats = args
                    .get(i)
                    .ok_or_else(|| "--trace-filter needs categories".to_string())?;
                for c in cats.split(',') {
                    cli.trace_filter.push(TraceCat::parse(c).ok_or_else(|| {
                        format!("unknown trace category {c} (want pkt|radio|power|route)")
                    })?);
                }
            }
            "--series" if run_mode => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--series needs a file".to_string())?;
                cli.series = Some(PathBuf::from(f));
            }
            "--compare" if bench_mode => {
                let old = args
                    .get(i + 1)
                    .ok_or_else(|| "--compare needs two bench files".to_string())?;
                let new = args
                    .get(i + 2)
                    .ok_or_else(|| "--compare needs two bench files".to_string())?;
                cli.compare = Some((PathBuf::from(old), PathBuf::from(new)));
                i += 2;
            }
            "--tolerance" if bench_mode => {
                i += 1;
                let pct = args
                    .get(i)
                    .ok_or_else(|| "--tolerance needs a percentage".to_string())?;
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad --tolerance value {pct}"))?;
                if pct < 0.0 || !pct.is_finite() {
                    return Err("--tolerance must be a non-negative percentage".into());
                }
                cli.tolerance = pct;
            }
            "--series-every" if run_mode => {
                i += 1;
                let secs = args
                    .get(i)
                    .ok_or_else(|| "--series-every needs seconds".to_string())?;
                let secs: f64 = secs
                    .parse()
                    .map_err(|_| format!("bad --series-every value {secs}"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--series-every must be positive".into());
                }
                cli.series_every = Some(secs);
            }
            "list" if !run_mode && !bench_mode => cli.list = true,
            "all" if !run_mode && !bench_mode => {
                cli.ids.extend(all().iter().map(|e| e.id.to_string()))
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if run_mode => {
                if cli.scn.is_some() {
                    return Err("repro run takes exactly one scenario file".into());
                }
                cli.scn = Some(PathBuf::from(other));
            }
            other if bench_mode => return Err(format!("bench takes no positional arg {other}")),
            other => cli.ids.push(other.to_string()),
        }
        i += 1;
    }
    if run_mode && cli.scn.is_none() {
        return Err("repro run needs a scenario file".into());
    }
    if !cli.trace_filter.is_empty() && cli.trace.is_none() {
        return Err("--trace-filter needs --trace".into());
    }
    if cli.series_every.is_some() && cli.series.is_none() {
        return Err("--series-every needs --series".into());
    }
    // Order-preserving dedup across the whole list, so
    // `repro fig5 table1 fig5` runs fig5 once (and `all` plus an explicit
    // id never doubles up).
    let mut seen = HashSet::new();
    cli.ids.retain(|id| seen.insert(id.clone()));
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if cli.list {
        let width = all().iter().map(|e| e.id.len()).max().unwrap_or(0);
        for e in all() {
            println!("{:width$}  {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if cli.bench {
        return run_bench(&cli);
    }
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(scn) = &cli.scn {
        return run_scenario_file(scn, &cli);
    }
    if cli.ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let ctx = RunCtx {
        quality: cli.quality,
        out_dir: cli.out_dir.clone(),
    };
    for id in &cli.ids {
        let Some(e) = find(id) else {
            eprintln!("unknown experiment {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        eprintln!("running {} at {:?} quality...", e.id, cli.quality);
        let started = std::time::Instant::now();
        let out = (e.run)(&ctx);
        // --json always selects the structured stdout form; --out only
        // adds artifact files on top (the .txt rendering is persisted
        // there regardless).
        if cli.json {
            println!("{}", out.to_json(e.title));
        } else {
            println!("{}", out.render(e.title));
        }
        if let Some(dir) = &cli.out_dir {
            if let Err(err) = persist(dir, e.id, e.title, &out, cli.json) {
                eprintln!("cannot persist {} artifacts: {err}", e.id);
                return ExitCode::FAILURE;
            }
        }
        eprintln!("  done in {:.1?}\n", started.elapsed());
    }
    ExitCode::SUCCESS
}

/// Writes `<dir>/<id>.txt` (always) and `<dir>/<id>.json` + `<dir>/<id>.csv`
/// (with `--json`).
fn persist(dir: &Path, id: &str, title: &str, out: &Output, json: bool) -> std::io::Result<()> {
    std::fs::write(dir.join(format!("{id}.txt")), out.render(title))?;
    if json {
        std::fs::write(dir.join(format!("{id}.json")), out.to_json(title))?;
        std::fs::write(dir.join(format!("{id}.csv")), out.to_csv())?;
    }
    Ok(())
}

/// `repro bench`: time the canonical grid and print/persist the document,
/// or (`--compare`) diff two checked-in documents and gate on regressions.
fn run_bench(cli: &Cli) -> ExitCode {
    if let Some((old_path, new_path)) = &cli.compare {
        return run_compare(old_path, new_path, cli.tolerance);
    }
    let quick = cli.quality == Quality::Quick || cli.quality == Quality::Test;
    eprintln!(
        "benching the {} grid (wall-clock figures, not reproducible)...",
        if quick { "quick" } else { "full" }
    );
    let started = std::time::Instant::now();
    let cells = bench_grid(quick);
    let json = bench_json(&git_rev(), &cells);
    print!("{json}");
    if let Some(out) = &cli.out_dir {
        // For bench, --out names the output *file*, not a directory.
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("  done in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}

/// `repro bench --compare`: per-cell delta table; nonzero exit on any
/// regression beyond the tolerance.
fn run_compare(old_path: &Path, new_path: &Path, tolerance: f64) -> ExitCode {
    let load = |path: &Path| -> Result<(String, Vec<_>), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_bench(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let ((old_rev, old), (new_rev, new)) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("comparing {old_rev} -> {new_rev}");
    let deltas = compare(&old, &new, tolerance);
    print!("{}", render_compare(&deltas, tolerance));
    if deltas.iter().any(|d| d.regressed) {
        eprintln!("FAIL: at least one cell regressed more than {tolerance}%");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro run <file.scn>`: parse, validate, execute, print `RunStats` JSON.
fn run_scenario_file(path: &Path, cli: &Cli) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut scenario = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if cli.quality == Quality::Test {
        // Smoke mode: cap the horizon so CI runs any preset in seconds.
        let cap = bcp_sim::time::SimDuration::from_secs(60);
        scenario.duration = scenario.duration.min(cap);
        if let Some(c) = scenario.traffic_cutoff {
            scenario.traffic_cutoff = Some(c.min(cap));
        }
    }
    eprintln!(
        "running {} ({} nodes, {} senders, {:?})...",
        path.display(),
        scenario.topo.len(),
        scenario.senders.len(),
        scenario.duration
    );
    let started = std::time::Instant::now();
    let opts = RunOptions {
        trace: cli.trace.is_some(),
        series_every: cli
            .series
            .as_ref()
            .map(|_| SimDuration::from_secs_f64(cli.series_every.unwrap_or(1.0))),
        scalar_lookahead: false,
    };
    let out = scenario.run_with(&opts);
    let stats = out.stats;
    if let Some(file) = &cli.trace {
        let mut ndjson = String::new();
        let mut kept = 0usize;
        for r in &out.trace {
            if cli.trace_filter.is_empty() || cli.trace_filter.contains(&r.ev.cat()) {
                ndjson.push_str(&r.to_ndjson());
                ndjson.push('\n');
                kept += 1;
            }
        }
        if let Err(e) = std::fs::write(file, ndjson) {
            eprintln!("cannot write trace {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  trace: {kept}/{} records -> {}",
            out.trace.len(),
            file.display()
        );
    }
    if let Some(file) = &cli.series {
        let mut ndjson = String::new();
        for s in &out.series {
            ndjson.push_str(&s.to_ndjson());
            ndjson.push('\n');
        }
        if let Err(e) = std::fs::write(file, ndjson) {
            eprintln!("cannot write series {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  series: {} samples -> {}",
            out.series.len(),
            file.display()
        );
    }
    let json = stats.to_json();
    println!("{json}");
    if let Some(dir) = &cli.out_dir {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "scenario".into());
        if let Err(e) = std::fs::write(dir.join(format!("{stem}.json")), &json) {
            eprintln!("cannot persist stats: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("  done in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!(
        "usage: repro list\n\
         \x20      repro all [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]\n\
         \x20      repro <id>... [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]\n\
         \x20      repro run <file.scn> [--test] [--out <dir>]\n\
         \x20                [--trace <file>] [--trace-filter pkt,radio,power,route]\n\
         \x20                [--series <file>] [--series-every <secs>]\n\
         \x20      repro bench [--quick|--full] [--out <file>]\n\
         \x20      repro bench --compare <old.json> <new.json> [--tolerance <pct>]"
    );
}
