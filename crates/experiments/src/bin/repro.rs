//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list
//! repro all [--quick|--paper|--test]
//! repro <id>... [--quick|--paper|--test]
//! ```

use bcp_experiments::{all, find, Quality};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let mut quality = Quality::Quick;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => quality = Quality::Quick,
            "--paper" | "--full" => quality = Quality::Paper,
            "--paper-lite" => quality = Quality::PaperLite,
            "--test" => quality = Quality::Test,
            "list" => {
                for e in all() {
                    println!("{:8}  {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(all().iter().map(|e| e.id.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    ids.dedup();
    for id in &ids {
        let Some(e) = find(id) else {
            eprintln!("unknown experiment {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        eprintln!("running {} at {:?} quality...", e.id, quality);
        let started = std::time::Instant::now();
        let out = (e.run)(quality);
        println!("{}", out.render(e.title));
        eprintln!("  done in {:.1?}\n", started.elapsed());
    }
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!(
        "usage: repro list | repro all [--quick|--paper-lite|--paper|--test] | repro <id>..."
    );
}
