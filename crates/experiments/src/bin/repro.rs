//! `repro` — regenerate the paper's tables and figures, and run scenario
//! files.
//!
//! ```text
//! repro list
//! repro all [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]
//! repro <id>... [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]
//! repro run <file.scn> [--test] [--out <dir>]
//!           [--trace <file>] [--trace-filter <cats>]
//!           [--series <file>] [--series-every <secs>]
//!           [--checkpoint-every <secs> --ckpt <dir>]
//! repro resume <file.ckpt> [--shards <n>] [--out <dir>]
//!              [--trace <file>] [--series <file>] [--series-every <secs>]
//! repro explore <file.scn|file.ckpt> [--warm <secs>] [--until <secs>]
//!               [--max-interleavings <n>] [--max-steps <n>]
//! repro bench [--quick|--full] [--out <file>]
//! repro bench --compare <old.json> <new.json> [--tolerance <pct>]
//! repro serve [--store <dir>] [--sock <path>] [--grid <secs>] [--budget <n>]
//! repro submit <file.scn|file.sweep> [--sock <path>]
//!              [--test|--quick|--paper-lite|--paper]
//! repro status [--sock <path>]
//! repro watch <job> [--sock <path>]
//! repro shutdown [--sock <path>]
//! ```
//!
//! * `repro <id>` prints the gnuplot-ready text rendering; `--json` emits
//!   the structured form instead (and, with `--out`, persists `.txt`,
//!   `.json` and `.csv` artifacts per experiment).
//! * `repro run` executes any `.scn` scenario file (see the README's
//!   "Scenario files" section) and prints the run's `RunStats` as JSON;
//!   `--test` clamps the simulated duration to 60 s for smoke tests.
//!   `--trace` additionally writes the flight-recorder trace as NDJSON
//!   (one record per line; `--trace-filter` keeps only the named
//!   comma-separated categories out of `pkt,radio,power,route`), and
//!   `--series` writes one NDJSON delta sample per `--series-every`
//!   seconds of sim time (default 1). Neither switch perturbs the run:
//!   the printed `RunStats` are bit-identical either way.
//! * `--checkpoint-every` additionally pauses the run on that grid of sim
//!   instants and writes a versioned, checksummed checkpoint file per
//!   pause into `--ckpt <dir>`; the printed `RunStats` are bit-identical
//!   to an uninterrupted run. `repro resume <file.ckpt>` finishes a
//!   checkpointed run (optionally re-partitioned with `--shards`) and
//!   prints the same `RunStats` JSON the uninterrupted run would have;
//!   its `--trace`/`--series` switches *append* to the named NDJSON
//!   files, covering exactly the post-checkpoint segment, so resuming on
//!   top of the original run's files yields the uninterrupted streams.
//! * `repro explore` runs the bounded race explorer: every admissible
//!   same-timestamp event ordering from a checkpoint (or from a scenario
//!   warmed for `--warm` seconds) up to `--until`, checking the engine's
//!   liveness/energy invariants on each path. Exits nonzero on any
//!   violation. Keep the world small (≤10 nodes) — ties compound.
//! * `repro bench` times the canonical node × shard grid end to end and
//!   prints `{"rev":...,"cells":[...]}`; check the output in as
//!   `BENCH_<rev>.json` to track engine throughput across revisions.
//!   `--quick` (the default quality) runs the CI-sized corner of the
//!   grid; `--full` runs the whole matrix. `--compare` instead diffs two
//!   checked-in documents cell by cell and exits nonzero when any cell
//!   regressed more than `--tolerance` percent (default 10).
//! * `repro serve` runs the sweep server (see the README's "Sweep
//!   server" section): submissions land in a content-addressed result
//!   cache under `--store`, long cells checkpoint on the `--grid` so a
//!   killed server resumes them, and `repro watch <job>` streams the
//!   per-window series samples live. `repro submit` accepts a `.scn`
//!   file (one cell) or a `.sweep` grid file (one cell per job); the
//!   quality flag is recorded in each cell's cache key (`--test` clamps
//!   the horizon server-side exactly like `repro run --test`).

use bcp_experiments::bench::{
    bench_fork_sweep, bench_grid, bench_json, compare, git_rev, parse_bench, render_compare,
    render_drift, render_fork_line,
};
use bcp_experiments::{all, find, Output, Quality, RunCtx};
use bcp_sim::time::{SimDuration, SimTime};
use bcp_sim::trace::TraceCat;
use bcp_simnet::{parse_spec, ExploreLimits, LiveWorld, RunOptions, RunOutput, World, WorldState};
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    quality: Quality,
    json: bool,
    out_dir: Option<PathBuf>,
    /// `repro run <file>`: the scenario file.
    scn: Option<PathBuf>,
    /// Experiment ids (order-preserving, deduplicated).
    ids: Vec<String>,
    list: bool,
    /// `repro bench`: run the throughput grid instead of experiments.
    bench: bool,
    /// `repro run --trace <file>`: write the flight-recorder NDJSON here.
    trace: Option<PathBuf>,
    /// `--trace-filter`: keep only these categories (empty = all).
    trace_filter: Vec<TraceCat>,
    /// `repro run --series <file>`: write per-window NDJSON samples here.
    series: Option<PathBuf>,
    /// `--series-every <secs>` (default 1 s when `--series` is given).
    series_every: Option<f64>,
    /// `repro bench --compare <old> <new>`: diff two bench documents.
    compare: Option<(PathBuf, PathBuf)>,
    /// `--tolerance <pct>` for `--compare` (default 10%).
    tolerance: f64,
    /// `repro run --checkpoint-every <secs>`: checkpoint grid interval.
    checkpoint_every: Option<f64>,
    /// `repro run --ckpt <dir>`: where checkpoint files land.
    ckpt_dir: Option<PathBuf>,
    /// `repro resume <file.ckpt>`: the checkpoint to finish.
    resume: Option<PathBuf>,
    /// `repro resume --shards <n>`: re-partition the restored world.
    shards: Option<usize>,
    /// `repro explore <file>`: the scenario or checkpoint to explore.
    explore: Option<PathBuf>,
    /// `repro explore --warm <secs>`: warm-up before snapshotting a `.scn`.
    warm: Option<f64>,
    /// `repro explore --until <secs>`: absolute sim instant to explore to.
    until: Option<f64>,
    /// `repro explore` bounds (None = the library defaults).
    max_interleavings: Option<u64>,
    /// See `max_interleavings`.
    max_steps: Option<u64>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quality: Quality::Quick,
        json: false,
        out_dir: None,
        scn: None,
        ids: Vec::new(),
        list: false,
        bench: false,
        trace: None,
        trace_filter: Vec::new(),
        series: None,
        series_every: None,
        compare: None,
        tolerance: 10.0,
        checkpoint_every: None,
        ckpt_dir: None,
        resume: None,
        shards: None,
        explore: None,
        warm: None,
        until: None,
        max_interleavings: None,
        max_steps: None,
    };
    let run_mode = args.first().map(String::as_str) == Some("run");
    let bench_mode = args.first().map(String::as_str) == Some("bench");
    let resume_mode = args.first().map(String::as_str) == Some("resume");
    let explore_mode = args.first().map(String::as_str) == Some("explore");
    cli.bench = bench_mode;
    let mut i = usize::from(run_mode || bench_mode || resume_mode || explore_mode);
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => cli.quality = Quality::Quick,
            "--paper" | "--full" => cli.quality = Quality::Paper,
            "--paper-lite" => cli.quality = Quality::PaperLite,
            "--test" => cli.quality = Quality::Test,
            "--json" => cli.json = true,
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--out needs a directory".to_string())?;
                cli.out_dir = Some(PathBuf::from(dir));
            }
            "--trace" if run_mode || resume_mode => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--trace needs a file".to_string())?;
                cli.trace = Some(PathBuf::from(f));
            }
            "--trace-filter" if run_mode || resume_mode => {
                i += 1;
                let cats = args
                    .get(i)
                    .ok_or_else(|| "--trace-filter needs categories".to_string())?;
                for c in cats.split(',') {
                    cli.trace_filter.push(TraceCat::parse(c).ok_or_else(|| {
                        format!("unknown trace category {c} (want pkt|radio|power|route)")
                    })?);
                }
            }
            "--series" if run_mode || resume_mode => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--series needs a file".to_string())?;
                cli.series = Some(PathBuf::from(f));
            }
            "--compare" if bench_mode => {
                let old = args
                    .get(i + 1)
                    .ok_or_else(|| "--compare needs two bench files".to_string())?;
                let new = args
                    .get(i + 2)
                    .ok_or_else(|| "--compare needs two bench files".to_string())?;
                cli.compare = Some((PathBuf::from(old), PathBuf::from(new)));
                i += 2;
            }
            "--tolerance" if bench_mode => {
                i += 1;
                let pct = args
                    .get(i)
                    .ok_or_else(|| "--tolerance needs a percentage".to_string())?;
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad --tolerance value {pct}"))?;
                if pct < 0.0 || !pct.is_finite() {
                    return Err("--tolerance must be a non-negative percentage".into());
                }
                cli.tolerance = pct;
            }
            "--series-every" if run_mode || resume_mode => {
                i += 1;
                let secs = args
                    .get(i)
                    .ok_or_else(|| "--series-every needs seconds".to_string())?;
                let secs: f64 = secs
                    .parse()
                    .map_err(|_| format!("bad --series-every value {secs}"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--series-every must be positive".into());
                }
                cli.series_every = Some(secs);
            }
            "--checkpoint-every" if run_mode => {
                i += 1;
                let secs = args
                    .get(i)
                    .ok_or_else(|| "--checkpoint-every needs seconds".to_string())?;
                let secs: f64 = secs
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every value {secs}"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err("--checkpoint-every must be positive".into());
                }
                cli.checkpoint_every = Some(secs);
            }
            "--ckpt" if run_mode => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--ckpt needs a directory".to_string())?;
                cli.ckpt_dir = Some(PathBuf::from(dir));
            }
            "--shards" if resume_mode => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or_else(|| "--shards needs a count".to_string())?;
                let n: usize = n.parse().map_err(|_| format!("bad --shards value {n}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                cli.shards = Some(n);
            }
            "--warm" | "--until" if explore_mode => {
                i += 1;
                let secs = args.get(i).ok_or_else(|| format!("{a} needs seconds"))?;
                let parsed: f64 = secs.parse().map_err(|_| format!("bad {a} value {secs}"))?;
                if parsed < 0.0 || !parsed.is_finite() {
                    return Err(format!("{a} must be non-negative seconds"));
                }
                if a == "--warm" {
                    cli.warm = Some(parsed);
                } else {
                    cli.until = Some(parsed);
                }
            }
            "--max-interleavings" | "--max-steps" if explore_mode => {
                i += 1;
                let n = args.get(i).ok_or_else(|| format!("{a} needs a count"))?;
                let parsed: u64 = n.parse().map_err(|_| format!("bad {a} value {n}"))?;
                if parsed == 0 {
                    return Err(format!("{a} must be at least 1"));
                }
                if a == "--max-interleavings" {
                    cli.max_interleavings = Some(parsed);
                } else {
                    cli.max_steps = Some(parsed);
                }
            }
            "list" if !run_mode && !bench_mode && !resume_mode && !explore_mode => cli.list = true,
            "all" if !run_mode && !bench_mode && !resume_mode && !explore_mode => {
                cli.ids.extend(all().iter().map(|e| e.id.to_string()))
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if run_mode => {
                if cli.scn.is_some() {
                    return Err("repro run takes exactly one scenario file".into());
                }
                cli.scn = Some(PathBuf::from(other));
            }
            other if resume_mode => {
                if cli.resume.is_some() {
                    return Err("repro resume takes exactly one checkpoint file".into());
                }
                cli.resume = Some(PathBuf::from(other));
            }
            other if explore_mode => {
                if cli.explore.is_some() {
                    return Err("repro explore takes exactly one input file".into());
                }
                cli.explore = Some(PathBuf::from(other));
            }
            other if bench_mode => return Err(format!("bench takes no positional arg {other}")),
            other => cli.ids.push(other.to_string()),
        }
        i += 1;
    }
    if run_mode && cli.scn.is_none() {
        return Err("repro run needs a scenario file".into());
    }
    if resume_mode && cli.resume.is_none() {
        return Err("repro resume needs a checkpoint file".into());
    }
    if explore_mode && cli.explore.is_none() {
        return Err("repro explore needs a scenario or checkpoint file".into());
    }
    if cli.checkpoint_every.is_some() != cli.ckpt_dir.is_some() {
        return Err("--checkpoint-every and --ckpt go together".into());
    }
    if !cli.trace_filter.is_empty() && cli.trace.is_none() {
        return Err("--trace-filter needs --trace".into());
    }
    if cli.series_every.is_some() && cli.series.is_none() {
        return Err("--series-every needs --series".into());
    }
    // Order-preserving dedup across the whole list, so
    // `repro fig5 table1 fig5` runs fig5 once (and `all` plus an explicit
    // id never doubles up).
    let mut seen = HashSet::new();
    cli.ids.retain(|id| seen.insert(id.clone()));
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if matches!(
        args[0].as_str(),
        "serve" | "submit" | "status" | "watch" | "shutdown"
    ) {
        return run_serve_cli(&args);
    }
    let mut cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if cli.list {
        let width = all().iter().map(|e| e.id.len()).max().unwrap_or(0);
        for e in all() {
            println!("{:width$}  {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if cli.bench {
        return run_bench(&cli);
    }
    if let Some(dir) = &cli.out_dir {
        // Probe actual writability up front (a read-only volume passes
        // create_dir_all), so a long run can never complete and then
        // fail to persist.
        if let Err(e) = bcp_snapshot::cache::ensure_writable_dir(dir) {
            eprintln!("--out {} is not a writable directory: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(scn) = cli.scn.clone() {
        return run_scenario_file(&scn, &cli);
    }
    if let Some(ckpt) = cli.resume.clone() {
        return run_resume(&ckpt, &mut cli);
    }
    if let Some(input) = &cli.explore {
        return run_explore(input, &cli);
    }
    if cli.ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let ctx = RunCtx {
        quality: cli.quality,
        out_dir: cli.out_dir.clone(),
    };
    for id in &cli.ids {
        let Some(e) = find(id) else {
            eprintln!("unknown experiment {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        eprintln!("running {} at {:?} quality...", e.id, cli.quality);
        let started = std::time::Instant::now();
        let out = (e.run)(&ctx);
        // --json always selects the structured stdout form; --out only
        // adds artifact files on top (the .txt rendering is persisted
        // there regardless).
        if cli.json {
            println!("{}", out.to_json(e.title));
        } else {
            println!("{}", out.render(e.title));
        }
        if let Some(dir) = &cli.out_dir {
            if let Err(err) = persist(dir, e.id, e.title, &out, cli.json) {
                eprintln!("cannot persist {} artifacts: {err}", e.id);
                return ExitCode::FAILURE;
            }
        }
        eprintln!("  done in {:.1?}\n", started.elapsed());
    }
    ExitCode::SUCCESS
}

/// Writes `<dir>/<id>.txt` (always) and `<dir>/<id>.json` + `<dir>/<id>.csv`
/// (with `--json`).
fn persist(dir: &Path, id: &str, title: &str, out: &Output, json: bool) -> std::io::Result<()> {
    std::fs::write(dir.join(format!("{id}.txt")), out.render(title))?;
    if json {
        std::fs::write(dir.join(format!("{id}.json")), out.to_json(title))?;
        std::fs::write(dir.join(format!("{id}.csv")), out.to_csv())?;
    }
    Ok(())
}

/// `repro bench`: time the canonical grid and print/persist the document,
/// or (`--compare`) diff two checked-in documents and gate on regressions.
fn run_bench(cli: &Cli) -> ExitCode {
    if let Some((old_path, new_path)) = &cli.compare {
        return run_compare(old_path, new_path, cli.tolerance);
    }
    let quick = cli.quality == Quality::Quick || cli.quality == Quality::Test;
    eprintln!(
        "benching the {} grid (wall-clock figures, not reproducible)...",
        if quick { "quick" } else { "full" }
    );
    let started = std::time::Instant::now();
    let cells = bench_grid(quick);
    let fork = bench_fork_sweep(quick);
    let json = bench_json(&git_rev(), &cells, Some(&fork));
    print!("{json}");
    if let Some(out) = &cli.out_dir {
        // For bench, --out names the output *file*, not a directory.
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("  done in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}

/// `repro bench --compare`: per-cell delta table; nonzero exit on any
/// regression beyond the tolerance. Grid drift (cells present in only
/// one document) is reported separately and never fails the gate — only
/// cells present in both grids carry a throughput verdict.
fn run_compare(old_path: &Path, new_path: &Path, tolerance: f64) -> ExitCode {
    let load = |path: &Path| -> Result<(String, Vec<_>, Option<_>), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_bench(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let ((old_rev, old, old_fork), (new_rev, new, new_fork)) =
        match (load(old_path), load(new_path)) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
    eprintln!("comparing {old_rev} -> {new_rev}");
    let deltas = compare(&old, &new, tolerance);
    print!("{}", render_compare(&deltas, tolerance));
    print!("{}", render_drift(&deltas));
    print!("{}", render_fork_line(old_fork.as_ref(), new_fork.as_ref()));
    if deltas.iter().any(|d| d.regressed) {
        eprintln!("FAIL: at least one cell regressed more than {tolerance}%");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro run <file.scn>`: parse, validate, execute, print `RunStats` JSON.
fn run_scenario_file(path: &Path, cli: &Cli) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut scenario = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if cli.quality == Quality::Test {
        // Smoke mode: cap the horizon so CI runs any preset in seconds.
        let cap = bcp_sim::time::SimDuration::from_secs(60);
        scenario.duration = scenario.duration.min(cap);
        if let Some(c) = scenario.traffic_cutoff {
            scenario.traffic_cutoff = Some(c.min(cap));
        }
    }
    eprintln!(
        "running {} ({} nodes, {} senders, {:?})...",
        path.display(),
        scenario.topo.len(),
        scenario.senders.len(),
        scenario.duration
    );
    let started = std::time::Instant::now();
    let opts = run_options(cli);
    let stem = file_stem(path);
    let out = match (cli.checkpoint_every, &cli.ckpt_dir) {
        (Some(every), Some(dir)) => {
            // Probe writability before building the world: a read-only
            // or mis-permissioned directory must fail here, not at the
            // first grid pause with the run's work already spent.
            if let Err(e) = bcp_snapshot::cache::ensure_writable_dir(dir) {
                eprintln!("--ckpt {} is not a writable directory: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let every = SimDuration::from_secs_f64(every);
            let meta = run_meta(cli);
            let mut lw = World::build(&scenario, &opts);
            // Pause on the checkpoint grid, persist, keep going: the
            // final stats are bit-identical to the uninterrupted run
            // (capture is a pure read of the paused world).
            while lw.time() + every < lw.end() {
                let t = lw.time() + every;
                lw.run_to(t);
                let file = dir.join(format!("{stem}-{}s.ckpt", t.as_secs_f64()));
                if let Err(e) = bcp_snapshot::save_with_meta(&file, &lw.snapshot(), &meta) {
                    eprintln!("cannot write checkpoint {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("  checkpoint at {t} -> {}", file.display());
            }
            lw.finish()
        }
        _ => scenario.run_with(&opts),
    };
    if let Err(e) = emit_run_outputs(&out, cli, &stem, false) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    eprintln!("  done in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}

/// `repro resume <file.ckpt>`: load, restore (optionally re-sharded),
/// finish, print the run's `RunStats` JSON. Trace/series files are opened
/// in append mode so a resume continues the original run's streams
/// without re-emitting anything from before the checkpoint.
///
/// The checkpoint records the original run's series interval and trace
/// filter ([`bcp_snapshot::RunMeta`]); flags that contradict the recorded
/// values are rejected (a silently different interval or filter would
/// make the appended stream incoherent with the pre-checkpoint part),
/// and unset flags inherit them.
fn run_resume(path: &Path, cli: &mut Cli) -> ExitCode {
    let (state, meta) = match bcp_snapshot::load_with_meta(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = reconcile_resume_meta(cli, &meta) {
        eprintln!("{}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let state = match cli.shards {
        Some(n) => state.with_shards(n),
        None => state,
    };
    eprintln!(
        "resuming {} at {} ({} nodes, {} shard{})...",
        path.display(),
        state.time,
        state.nodes.len(),
        state.scen.shards,
        if state.scen.shards == 1 { "" } else { "s" }
    );
    let started = std::time::Instant::now();
    let out = LiveWorld::restore(&state, &run_options(cli)).finish();
    if let Err(e) = emit_run_outputs(&out, cli, &file_stem(path), true) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    eprintln!("  done in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}

/// `repro explore <file.scn|file.ckpt>`: bounded race exploration from a
/// checkpoint, or from a scenario warmed for `--warm` seconds. Prints the
/// report as JSON; exits nonzero when any invariant was violated.
fn run_explore(path: &Path, cli: &Cli) -> ExitCode {
    let state = match load_explore_state(path, cli) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let end = match cli.until {
        Some(secs) => SimTime::from_secs_f64(secs),
        None => state.time + SimDuration::from_secs(1),
    };
    if end <= state.time {
        eprintln!(
            "--until {} is not past the start instant {}",
            end, state.time
        );
        return ExitCode::FAILURE;
    }
    let mut limits = ExploreLimits::default();
    if let Some(n) = cli.max_interleavings {
        limits.max_interleavings = n;
    }
    if let Some(n) = cli.max_steps {
        limits.max_steps = n;
    }
    eprintln!(
        "exploring {} from {} to {end} ({} nodes)...",
        path.display(),
        state.time,
        state.nodes.len()
    );
    let started = std::time::Instant::now();
    let report = bcp_simnet::explore(&state, end, limits);
    let mut json = format!(
        "{{\"interleavings\":{},\"branch_points\":{},\"max_ties\":{},\"truncated\":{},\"violations\":[",
        report.interleavings, report.branch_points, report.max_ties, report.truncated
    );
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push('"');
        json.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
        json.push('"');
    }
    json.push_str("]}");
    println!("{json}");
    eprintln!("  done in {:.1?}", started.elapsed());
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: {} invariant violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}

/// Explore input: a checkpoint file is loaded as-is; anything else is
/// parsed as a `.scn` spec, built, and run to `--warm` (default 0).
fn load_explore_state(path: &Path, cli: &Cli) -> Result<WorldState, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if bytes.starts_with(&bcp_snapshot::MAGIC) {
        return bcp_snapshot::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()));
    }
    let text =
        String::from_utf8(bytes).map_err(|_| format!("{}: not a .scn file", path.display()))?;
    let scenario = parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lw = World::build(&scenario, &RunOptions::default());
    if let Some(warm) = cli.warm {
        if warm > 0.0 {
            let t = SimTime::from_secs_f64(warm);
            if t >= lw.end() {
                return Err(format!("--warm {warm} is past the scenario horizon"));
            }
            lw.run_to(t);
        }
    }
    Ok(lw.snapshot())
}

/// Reconciles resume-time flags against the checkpoint's recorded
/// [`bcp_snapshot::RunMeta`]: explicit contradictions are errors, unset
/// flags inherit the recorded values, and a resume that silently drops a
/// recorded stream gets a warning (the combined NDJSON file would stop at
/// the checkpoint).
fn reconcile_resume_meta(cli: &mut Cli, meta: &bcp_snapshot::RunMeta) -> Result<(), String> {
    match (meta.series_every, &cli.series) {
        (Some(rec), Some(_)) => match cli.series_every {
            Some(req) if SimDuration::from_secs_f64(req) != rec => {
                return Err(format!(
                    "checkpoint recorded --series-every {} but the resume asked for {req}; \
                     the appended samples would not telescope onto the original stream \
                     (drop --series-every to inherit, or re-run from the scenario)",
                    rec.as_secs_f64()
                ));
            }
            Some(_) => {}
            None => {
                eprintln!(
                    "  inheriting --series-every {} from the checkpoint",
                    rec.as_secs_f64()
                );
                cli.series_every = Some(rec.as_secs_f64());
            }
        },
        (Some(rec), None) => eprintln!(
            "  note: the original run sampled series every {rec}; resuming without \
             --series leaves that stream truncated at the checkpoint"
        ),
        (None, _) => {}
    }
    if meta.trace {
        if cli.trace.is_some() {
            let recorded: Vec<TraceCat> = meta
                .trace_filter
                .iter()
                .filter_map(|l| TraceCat::parse(l))
                .collect();
            if cli.trace_filter.is_empty() && !recorded.is_empty() {
                eprintln!(
                    "  inheriting --trace-filter {} from the checkpoint",
                    meta.trace_filter.join(",")
                );
                cli.trace_filter = recorded;
            } else if !cli.trace_filter.is_empty() && cli.trace_filter != recorded {
                return Err(format!(
                    "checkpoint recorded --trace-filter {} but the resume asked for {}; \
                     the appended records would not match the original stream \
                     (drop --trace-filter to inherit)",
                    if meta.trace_filter.is_empty() {
                        "<all>".to_string()
                    } else {
                        meta.trace_filter.join(",")
                    },
                    cli.trace_filter
                        .iter()
                        .map(|c| c.label())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
        } else {
            eprintln!(
                "  note: the original run traced; resuming without --trace leaves that \
                 stream truncated at the checkpoint"
            );
        }
    }
    Ok(())
}

/// The recorded run metadata a `repro run` checkpoint carries: enough for
/// `repro resume` to reject or inherit stream-shaping flags.
fn run_meta(cli: &Cli) -> bcp_snapshot::RunMeta {
    bcp_snapshot::RunMeta {
        series_every: run_options(cli).series_every,
        trace: cli.trace.is_some(),
        trace_filter: cli
            .trace_filter
            .iter()
            .map(|c| c.label().to_string())
            .collect(),
    }
}

/// The `RunOptions` both `run` and `resume` build from the CLI switches.
fn run_options(cli: &Cli) -> RunOptions {
    RunOptions {
        trace: cli.trace.is_some(),
        series_every: cli
            .series
            .as_ref()
            .map(|_| SimDuration::from_secs_f64(cli.series_every.unwrap_or(1.0))),
        scalar_lookahead: false,
    }
}

fn file_stem(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".into())
}

/// Writes the trace/series NDJSON streams and prints (and, with `--out`,
/// persists) the stats JSON. `append` is the resume path: the NDJSON
/// files grow instead of being truncated, so the combined file holds the
/// uninterrupted streams.
fn emit_run_outputs(out: &RunOutput, cli: &Cli, stem: &str, append: bool) -> Result<(), String> {
    if let Some(file) = &cli.trace {
        let mut ndjson = String::new();
        let mut kept = 0usize;
        for r in &out.trace {
            if cli.trace_filter.is_empty() || cli.trace_filter.contains(&r.ev.cat()) {
                ndjson.push_str(&r.to_ndjson());
                ndjson.push('\n');
                kept += 1;
            }
        }
        write_ndjson(file, &ndjson, append)
            .map_err(|e| format!("cannot write trace {}: {e}", file.display()))?;
        eprintln!(
            "  trace: {kept}/{} records {} {}",
            out.trace.len(),
            if append { "appended to" } else { "->" },
            file.display()
        );
    }
    if let Some(file) = &cli.series {
        let mut ndjson = String::new();
        for s in &out.series {
            ndjson.push_str(&s.to_ndjson());
            ndjson.push('\n');
        }
        write_ndjson(file, &ndjson, append)
            .map_err(|e| format!("cannot write series {}: {e}", file.display()))?;
        eprintln!(
            "  series: {} samples {} {}",
            out.series.len(),
            if append { "appended to" } else { "->" },
            file.display()
        );
    }
    let json = out.stats.to_json();
    println!("{json}");
    if let Some(dir) = &cli.out_dir {
        std::fs::write(dir.join(format!("{stem}.json")), &json)
            .map_err(|e| format!("cannot persist stats: {e}"))?;
    }
    Ok(())
}

fn write_ndjson(path: &Path, text: &str, append: bool) -> std::io::Result<()> {
    if append {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(text.as_bytes())
    } else {
        std::fs::write(path, text)
    }
}

/// `repro serve|submit|status|watch|shutdown`: the sweep-server side.
/// Parsed separately from the experiment CLI — the server subcommands
/// share none of its flags.
fn run_serve_cli(args: &[String]) -> ExitCode {
    match serve_cli(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn serve_cli(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args[0].as_str();
    let mut store = PathBuf::from("serve-store");
    let mut sock: Option<PathBuf> = None;
    let mut grid = 10.0f64;
    let mut budget = 0usize;
    let mut quality = "quick";
    let mut positional: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--store" if cmd == "serve" => {
                i += 1;
                store = PathBuf::from(args.get(i).ok_or("--store needs a directory")?);
            }
            "--sock" => {
                i += 1;
                sock = Some(PathBuf::from(args.get(i).ok_or("--sock needs a path")?));
            }
            "--grid" if cmd == "serve" => {
                i += 1;
                let secs = args.get(i).ok_or("--grid needs seconds")?;
                grid = secs
                    .parse()
                    .map_err(|_| format!("bad --grid value {secs}"))?;
                if grid <= 0.0 || !grid.is_finite() {
                    return Err("--grid must be positive".into());
                }
            }
            "--budget" if cmd == "serve" => {
                i += 1;
                let n = args.get(i).ok_or("--budget needs a thread count")?;
                budget = n.parse().map_err(|_| format!("bad --budget value {n}"))?;
            }
            "--test" if cmd == "submit" => quality = "test",
            "--quick" if cmd == "submit" => quality = "quick",
            "--paper-lite" if cmd == "submit" => quality = "paper-lite",
            "--paper" if cmd == "submit" => quality = "paper",
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other} for repro {cmd}"));
            }
            other => {
                if positional.is_some() {
                    return Err(format!("repro {cmd} takes at most one argument"));
                }
                positional = Some(other.to_string());
            }
        }
        i += 1;
    }
    // The socket lives inside the store by default, so one `--store` (or
    // none) is enough to pair a server with its clients.
    let sock = sock.unwrap_or_else(|| store.join("serve.sock"));
    match cmd {
        "serve" => {
            if positional.is_some() {
                return Err("repro serve takes no positional argument".into());
            }
            let cfg = bcp_serve::ServeConfig {
                store_root: store,
                socket: sock,
                grid: SimDuration::from_secs_f64(grid),
                budget,
            };
            bcp_serve::run_server(&cfg)?;
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            let file = positional.ok_or("repro submit needs a .scn or .sweep file")?;
            let cells = expand_submission(Path::new(&file), quality)?;
            eprintln!("submitting {} cell(s) from {file}...", cells.len());
            let reply =
                bcp_serve::client::request_line(&sock, &bcp_serve::proto::submit_line(&cells))?;
            println!("{reply}");
            Ok(ExitCode::SUCCESS)
        }
        "status" => {
            if positional.is_some() {
                return Err("repro status takes no positional argument".into());
            }
            let reply = bcp_serve::client::request_line(&sock, &bcp_serve::proto::status_line())?;
            println!("{reply}");
            Ok(ExitCode::SUCCESS)
        }
        "watch" => {
            let job = positional.ok_or("repro watch needs a job id")?;
            bcp_serve::client::watch(&sock, &job, |line| println!("{line}"))?;
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            if positional.is_some() {
                return Err("repro shutdown takes no positional argument".into());
            }
            let reply = bcp_serve::client::request_line(&sock, &bcp_serve::proto::shutdown_line())?;
            println!("{reply}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown server subcommand {other}")),
    }
}

/// Expands a submission file into serve cells: a `.sweep` grid becomes
/// one cell per job (canonical `.scn` text each), anything else is parsed
/// as a single `.scn` scenario.
fn expand_submission(path: &Path, quality: &str) -> Result<Vec<bcp_serve::CellSpec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if path.extension().is_some_and(|x| x == "sweep") {
        let spec = bcp_experiments::suite::parse_sweep(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        return spec
            .jobs()
            .iter()
            .map(|job| {
                let scen = spec
                    .scenario(job)
                    .map_err(|e| format!("{}: invalid grid point: {e}", path.display()))?;
                let scn = bcp_simnet::emit_spec(&scen)
                    .map_err(|e| format!("{}: cell does not re-emit: {e}", path.display()))?;
                Ok(bcp_serve::CellSpec {
                    scn,
                    quality: quality.to_string(),
                    seed: job.seed,
                })
            })
            .collect();
    }
    let scen = parse_spec(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let scn = bcp_simnet::emit_spec(&scen)
        .map_err(|e| format!("{}: scenario does not re-emit: {e}", path.display()))?;
    Ok(vec![bcp_serve::CellSpec {
        scn,
        quality: quality.to_string(),
        seed: scen.seed,
    }])
}

fn usage() {
    eprintln!(
        "usage: repro list\n\
         \x20      repro all [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]\n\
         \x20      repro <id>... [--quick|--paper-lite|--paper|--test] [--json] [--out <dir>]\n\
         \x20      repro run <file.scn> [--test] [--out <dir>]\n\
         \x20                [--trace <file>] [--trace-filter pkt,radio,power,route]\n\
         \x20                [--series <file>] [--series-every <secs>]\n\
         \x20                [--checkpoint-every <secs> --ckpt <dir>]\n\
         \x20      repro resume <file.ckpt> [--shards <n>] [--out <dir>]\n\
         \x20                [--trace <file>] [--series <file>] [--series-every <secs>]\n\
         \x20      repro explore <file.scn|file.ckpt> [--warm <secs>] [--until <secs>]\n\
         \x20                [--max-interleavings <n>] [--max-steps <n>]\n\
         \x20      repro bench [--quick|--full] [--out <file>]\n\
         \x20      repro bench --compare <old.json> <new.json> [--tolerance <pct>]\n\
         \x20      repro serve [--store <dir>] [--sock <path>] [--grid <secs>] [--budget <n>]\n\
         \x20      repro submit <file.scn|file.sweep> [--sock <path>]\n\
         \x20                [--test|--quick|--paper-lite|--paper]\n\
         \x20      repro status [--sock <path>]\n\
         \x20      repro watch <job> [--sock <path>]\n\
         \x20      repro shutdown [--sock <path>]"
    );
}
