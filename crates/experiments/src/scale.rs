//! The `scale` experiment: single-run multi-core scaling.
//!
//! Sweeps node count × shard count on large sensor-model grids and
//! reports wall-clock events/sec plus the speedup over the unsharded
//! run. The sensor model is the scaling showcase on purpose: its only
//! radio is the short-range MicaZ, so a strip partition cuts few links
//! and the conservative lookahead is the low radio's link turnaround
//! latency — wide enough windows to batch useful work per barrier.
//!
//! Results are bit-identical across shard counts (the sweep asserts the
//! delivered-packet counts agree), so the table is purely about speed.
//! Speedup requires actual cores: under `BCP_THREADS=1` (or on a
//! single-core machine) every row degenerates to the sequential path.

use crate::bench::{grid, GridTier};
use crate::output::Output;
use crate::registry::RunCtx;
use bcp_net::addr::NodeId;
use bcp_net::topo::Topology;
use bcp_simnet::{ModelKind, Scenario, ScenarioBuilder};
use std::time::Instant;

/// A large sensor-model convergecast: `side`×`side` grid at the paper's
/// 40 m pitch, sink at the grid centre, one node in ten sending.
pub fn sensor_scale(side: usize, seed: u64) -> Scenario {
    let topo = Topology::grid(side, 40.0);
    let n = topo.len();
    let sink = NodeId((side / 2 * side + side / 2) as u32);
    ScenarioBuilder::single_hop(ModelKind::Sensor, 1, 10, seed)
        .topology(topo)
        .sink(sink)
        .senders_auto((n / 10).max(1))
        .build()
        .expect("the scale grid is valid")
}

/// The registered `scale` experiment. The node×shard sweep comes from
/// [`grid`] — the same table `repro bench` runs, so the two can't drift.
pub fn scale(ctx: &RunCtx) -> Output {
    let g = grid(GridTier::for_scale(ctx.quality));
    let mut rows = Vec::new();
    for &side in g.sides {
        let mut baseline_eps: Option<f64> = None;
        let mut baseline_delivered: Option<u64> = None;
        for &shards in g.shard_counts {
            let scen = g.scenario(side, shards, 1);
            let t = Instant::now();
            let stats = scen.run();
            let wall = t.elapsed().as_secs_f64().max(1e-9);
            let eps = stats.events as f64 / wall;
            let speedup = match baseline_eps {
                None => {
                    baseline_eps = Some(eps);
                    1.0
                }
                Some(base) => eps / base,
            };
            // Sharding must never change physics: same deliveries.
            match baseline_delivered {
                None => baseline_delivered = Some(stats.metrics.delivered_packets),
                Some(d) => assert_eq!(
                    d, stats.metrics.delivered_packets,
                    "sharded run diverged from the sequential baseline"
                ),
            }
            rows.push(vec![
                format!("{}", side * side),
                format!("{shards}"),
                format!("{}", stats.events),
                format!("{:.2}", wall),
                format!("{:.0}", eps),
                format!("{speedup:.2}x"),
                format!("{}", stats.metrics.delivered_packets),
            ]);
        }
    }
    Output::Table {
        headers: [
            "nodes",
            "shards",
            "events",
            "wall_s",
            "events/s",
            "speedup",
            "delivered",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        notes: vec![
            format!(
                "sensor-model convergecast, {} s simulated, n/10 senders at 2 Kbps",
                g.duration_s
            ),
            format!(
                "worker pool: {} threads (override with BCP_THREADS); speedup needs real cores",
                bcp_sim::threads::worker_count(usize::MAX)
            ),
            "identical seeds give bit-identical results at every shard count".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_scenario_is_well_formed() {
        let s = sensor_scale(16, 1);
        assert_eq!(s.topo.len(), 256);
        assert_eq!(s.senders.len(), 25);
        assert!(!s.senders.contains(&s.sink));
        assert_eq!(s.model, ModelKind::Sensor);
    }

    use crate::suite::Quality;

    #[test]
    fn scale_experiment_renders_and_agrees() {
        // Runs the Test-quality sweep (asserting internally that sharded
        // runs match the sequential baseline) and checks the table shape.
        let out = scale(&RunCtx::new(Quality::Test));
        let text = out.render("scale");
        assert!(text.contains("events/s"));
        assert!(text.contains("speedup"));
        // 1 side × 3 shard counts.
        assert_eq!(text.lines().filter(|l| l.contains('x')).count(), 3);
    }
}
