//! The `idle_floor` experiment: how far low-power listening pushes the
//! low radio's idle tax toward the `p_sleep` doze floor — and where the
//! listen/sleep trade flips.
//!
//! The paper's Table 1 prices MicaZ listening at 59.1 mW against a
//! 0.06 mW doze; an always-on low radio therefore spends three orders of
//! magnitude more on *hearing nothing* than a duty-cycled one. But LPL
//! is not free: senders stretch a wake-up preamble of one full wake
//! interval in front of every frame, and every audible preamble keeps
//! sampled receivers awake. The sweep crosses the duty cycle against the
//! offered load to expose both regimes:
//!
//! * **Monitoring loads** (tens of bps): the channel is almost always
//!   silent, so the listening floor collapses with the duty cycle —
//!   LPL wins outright.
//! * **Paper loads** (2 kbps per sender): long preambles occupy the
//!   channel, carrier activity defeats the dozing, collisions force
//!   retries — the floor barely moves while the transfer cost balloons.

use crate::output::Output;
use crate::registry::RunCtx;
use crate::suite::{run_parallel, Quality};
use bcp_sim::stats::Series;
use bcp_sim::time::SimDuration;
use bcp_simnet::{ModelKind, Scenario, ScenarioBuilder, SleepSchedule};

/// The duty-cycle axis: always-on plus LPL schedules with a fixed 10 ms
/// channel sample and growing wake intervals.
pub fn schedules(q: Quality) -> Vec<SleepSchedule> {
    let sample = SimDuration::from_millis(10);
    let intervals_ms: &[u64] = match q {
        Quality::Test => &[100, 1000],
        _ => &[50, 100, 400, 1000],
    };
    let mut v = vec![SleepSchedule::AlwaysOn];
    v.extend(
        intervals_ms
            .iter()
            .map(|&ms| SleepSchedule::lpl(SimDuration::from_millis(ms), sample)),
    );
    v
}

fn duration(q: Quality) -> SimDuration {
    match q {
        Quality::Test => SimDuration::from_secs(60),
        Quality::Quick => SimDuration::from_secs(300),
        Quality::PaperLite | Quality::Paper => SimDuration::from_secs(600),
    }
}

/// One cell of the sweep: the paper's sensor-model grid, all traffic
/// trickling hop-by-hop over the (possibly duty-cycled) low radio.
fn scenario(rate_bps: f64, schedule: SleepSchedule, dur: SimDuration) -> Scenario {
    ScenarioBuilder::single_hop(ModelKind::Sensor, 5, 10, 1)
        .rate_bps(rate_bps)
        .duration(dur)
        .low_sleep(schedule)
        .build()
        .expect("the idle_floor grid is valid")
}

/// The registered `idle_floor` experiment.
pub fn idle_floor(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let dur = duration(q);
    let scheds = schedules(q);
    let rates: [f64; 2] = [50.0, 2_000.0];
    let mut series = Vec::new();
    for &rate in &rates {
        let jobs: Vec<Scenario> = scheds.iter().map(|&s| scenario(rate, s, dur)).collect();
        let stats = run_parallel(jobs);
        let mut floor = Series::new(format!("floor {rate:.0}bps"));
        let mut total = Series::new(format!("total {rate:.0}bps"));
        for (sched, st) in scheds.iter().zip(&stats) {
            let duty = sched.duty_cycle();
            floor.push(duty, st.energy_low_idle_j + st.energy_low_sleep_j);
            total.push(duty, st.per_node.iter().map(|n| n.ledger_j).sum());
        }
        series.push(floor);
        series.push(total);
    }
    Output::Figure {
        xlabel: "duty_cycle".into(),
        ylabel: "Low-radio energy (J)".into(),
        series,
        notes: vec![
            format!(
                "sensor model, 5 senders, {} s simulated; 10 ms channel samples",
                dur.as_secs_f64()
            ),
            "`floor` = network idle + doze energy (the listening tax LPL shrinks); \
             `total` = every metered joule incl. the wake-up preambles LPL adds"
                .into(),
            "monitoring loads ride the floor down; paper loads keep the channel \
             busy and pay for every stretched preamble — the listen/sleep crossover"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_axis_is_ordered_and_valid() {
        let scheds = schedules(Quality::Quick);
        assert_eq!(scheds[0], SleepSchedule::AlwaysOn);
        let duties: Vec<f64> = scheds.iter().map(|s| s.duty_cycle()).collect();
        assert!(
            duties.windows(2).all(|w| w[0] > w[1]),
            "duty cycles strictly shrink along the axis: {duties:?}"
        );
        // Every generated schedule passes the builder's validation.
        for s in scheds {
            scenario(50.0, s, SimDuration::from_secs(1));
        }
    }

    /// Points of `label`, with the always-on (duty 1.0) point split off.
    fn split(series: &[Series], label: &str) -> (f64, Vec<f64>) {
        let s = series
            .iter()
            .find(|s| s.label() == label)
            .unwrap_or_else(|| panic!("{label} missing"));
        let always = s.y_at(1.0).expect("always-on point present");
        let lpl: Vec<f64> = s
            .points()
            .iter()
            .filter(|(x, _, _)| *x < 1.0)
            .map(|&(_, y, _)| y)
            .collect();
        assert!(!lpl.is_empty(), "{label}: LPL points present");
        (always, lpl)
    }

    #[test]
    fn idle_energy_drops_toward_the_sleep_floor_at_monitoring_loads() {
        let out = idle_floor(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = &out else {
            panic!("idle_floor renders a figure");
        };
        let (always_floor, lpl_floors) = split(series, "floor 50bps");
        // Every LPL schedule beats always-on listening, and the best one
        // cuts the idle tax by most of an order of magnitude.
        assert!(
            lpl_floors.iter().all(|&y| y < always_floor),
            "duty cycling always shrinks the floor: {lpl_floors:?} vs {always_floor}"
        );
        let best = lpl_floors.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best < always_floor * 0.15,
            "LPL collapses the idle tax: {best} vs {always_floor}"
        );
        // The floor shrinks toward, but never below, every node dozing at
        // p_sleep for the whole run.
        let p = bcp_radio::profile::micaz();
        let hard_floor = p.p_sleep.as_watts() * 60.0 * 36.0;
        assert!(best > hard_floor, "{best} vs hard floor {hard_floor}");
        // …and the saving is real end to end, preambles included.
        let (always_total, lpl_totals) = split(series, "total 50bps");
        let best_total = lpl_totals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            best_total < always_total * 0.25,
            "monitoring loads ride the floor down: {best_total} vs {always_total}"
        );
    }

    #[test]
    fn heavy_load_defeats_duty_cycling() {
        let out = idle_floor(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = &out else {
            panic!("idle_floor renders a figure");
        };
        // The crossover: at monitoring loads the best LPL schedule keeps a
        // small fraction of the always-on bill; at the paper's 2 kbps the
        // stretched preambles occupy the channel, keep samplers awake and
        // claw most of the saving back.
        let (quiet_always, quiet_lpl) = split(series, "total 50bps");
        let (busy_always, busy_lpl) = split(series, "total 2000bps");
        let quiet_ratio = quiet_lpl.iter().cloned().fold(f64::INFINITY, f64::min) / quiet_always;
        let busy_ratio = busy_lpl.iter().cloned().fold(f64::INFINITY, f64::min) / busy_always;
        assert!(
            quiet_ratio < 0.25,
            "monitoring loads keep the saving: ratio {quiet_ratio}"
        );
        assert!(
            busy_ratio > 0.45,
            "paper loads lose most of it: ratio {busy_ratio}"
        );
        assert!(busy_ratio > quiet_ratio * 2.0, "the trade flips with load");
    }
}
