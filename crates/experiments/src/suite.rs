//! The simulation sweeps behind Figures 5–10 (Section 4.1).
//!
//! Each figure is a sweep over (model, burst size, sender count) cells with
//! `runs` seeded repetitions per cell; cells are independent, so they run
//! on all cores. Figure pairs that share sweeps (5+6, 8+9) reuse the same
//! data via a process-wide memo, so `repro all` pays for each sweep once.

use bcp_sim::stats::{mean_ci95, Series};
use bcp_sim::time::SimDuration;
use bcp_simnet::{ModelKind, RunStats, Scenario};
use std::collections::HashMap;
use std::sync::Mutex;

/// Sweep fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Unit-test scale: tiny durations, one run — shape checks only.
    Test,
    /// Minutes-scale: 600 s runs, 3 seeds, 4 sender counts.
    Quick,
    /// Full 5000 s steady-state runs, but 5 seeds and 4 sender counts —
    /// paper-faithful shapes at a fraction of the compute.
    PaperLite,
    /// The paper's scale: 5000 s runs, 20 seeds, 7 sender counts.
    Paper,
}

impl Quality {
    /// Simulated duration per run.
    pub fn duration(self) -> SimDuration {
        match self {
            Quality::Test => SimDuration::from_secs(400),
            Quality::Quick => SimDuration::from_secs(600),
            Quality::PaperLite | Quality::Paper => SimDuration::from_secs(5_000),
        }
    }

    /// Seeded repetitions per cell (the paper averages 20 runs).
    pub fn runs(self) -> usize {
        match self {
            Quality::Test => 1,
            Quality::Quick => 3,
            Quality::PaperLite => 5,
            Quality::Paper => 20,
        }
    }

    /// The sender-count axis (the paper sweeps 5–35).
    pub fn sender_counts(self) -> Vec<usize> {
        match self {
            Quality::Test => vec![5, 20],
            Quality::Quick | Quality::PaperLite => vec![5, 15, 25, 35],
            Quality::Paper => vec![5, 10, 15, 20, 25, 30, 35],
        }
    }
}

/// The paper's burst-size axis (packets of 32 B).
pub const BURSTS: [usize; 5] = [10, 100, 500, 1000, 2500];

/// Which of the two radio geometries a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// Lucent 11 Mbps at sensor range: no hop advantage (Figs. 5–7).
    Single,
    /// Cabletron reaching the sink in one hop (Figs. 8–10).
    Multi,
}

/// One sweep cell: model and burst size (bursts only matter to DualRadio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// The pure sensor network.
    Sensor,
    /// The pure 802.11 network.
    Dot11,
    /// BCP with the given burst size in packets.
    Dual(usize),
}

impl Cell {
    fn label(&self) -> String {
        match self {
            Cell::Sensor => "Sensor".into(),
            Cell::Dot11 => "802.11".into(),
            Cell::Dual(b) => format!("DualRadio-{b}"),
        }
    }
}

/// Averaged statistics of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Mean goodput and CI half-width.
    pub goodput: (f64, f64),
    /// Mean normalized energy (J/Kbit) and CI.
    pub j_per_kbit: (f64, f64),
    /// Sensor-header-accounted normalized energy and CI.
    pub j_per_kbit_header: (f64, f64),
    /// Mean delay (s) and CI.
    pub delay_s: (f64, f64),
}

fn summarize(runs: &[RunStats]) -> CellStats {
    let pick = |f: &dyn Fn(&RunStats) -> f64, delivered_only: bool| {
        let vals: Vec<f64> = runs
            .iter()
            .filter(|r| !delivered_only || r.metrics.delivered_packets > 0)
            .map(f)
            .filter(|v| v.is_finite())
            .collect();
        mean_ci95(&vals)
    };
    CellStats {
        goodput: pick(&|r| r.goodput, false),
        // Energy per bit and delay are only defined over runs that
        // delivered something (short runs with huge bursts may not).
        j_per_kbit: pick(&|r| r.j_per_kbit, true),
        j_per_kbit_header: pick(&|r| r.j_per_kbit_header, true),
        delay_s: pick(&|r| r.mean_delay_s, true),
    }
}

/// Runs `jobs` scenarios across the worker pool, preserving order. The
/// pool is sized by [`bcp_sim::threads::worker_count`], so one
/// `BCP_THREADS` variable caps both this sweep-level pool and each run's
/// intra-run shard pool. Note the caps apply *per layer*: a sweep of
/// scenarios that themselves set `shards > 1` multiplies the two, so
/// sharded sweeps should pin `BCP_THREADS=1` (or keep `shards = 1`) —
/// sweeps already saturate the machine with whole runs.
pub fn run_parallel(jobs: Vec<Scenario>) -> Vec<RunStats> {
    let n_workers = bcp_sim::threads::worker_count(jobs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunStats>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let stats = jobs[i].run();
                *results[i].lock().expect("result lock") = Some(stats);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("lock").expect("job ran"))
        .collect()
}

/// The full sweep for one geometry: every cell × sender count, averaged.
pub type SweepData = HashMap<(Cell, usize), CellStats>;

/// Memo key → sweep results (one entry per (geometry, rate, quality)).
type SweepMemo = HashMap<(Hop, RateMode, Quality), SweepData>;

fn build_scenario(
    hop: Hop,
    cell: Cell,
    senders: usize,
    seed: u64,
    q: Quality,
    rate: f64,
) -> Scenario {
    let (model, burst) = match cell {
        Cell::Sensor => (ModelKind::Sensor, 10),
        Cell::Dot11 => (ModelKind::Dot11, 10),
        Cell::Dual(b) => (ModelKind::DualRadio, b),
    };
    let s = match hop {
        Hop::Single => Scenario::single_hop(model, senders, burst, seed),
        Hop::Multi => Scenario::multi_hop(model, senders, burst, seed),
    };
    s.with_rate(rate).with_duration(q.duration())
}

/// Runs (or recalls) the sweep for `(hop, rate)` at the given quality.
pub fn sweep(hop: Hop, rate_mode: RateMode, q: Quality) -> SweepData {
    static MEMO: Mutex<Option<SweepMemo>> = Mutex::new(None);
    {
        let memo = MEMO.lock().expect("memo lock");
        if let Some(map) = memo.as_ref() {
            if let Some(data) = map.get(&(hop, rate_mode, q)) {
                return data.clone();
            }
        }
    }
    let rate = rate_mode.bps();
    let mut cells: Vec<Cell> = vec![Cell::Sensor, Cell::Dot11];
    cells.extend(BURSTS.iter().map(|&b| Cell::Dual(b)));
    let mut keys = Vec::new();
    let mut jobs = Vec::new();
    for &cell in &cells {
        for &n in &q.sender_counts() {
            for seed in 0..q.runs() as u64 {
                keys.push((cell, n));
                jobs.push(build_scenario(hop, cell, n, seed + 1, q, rate));
            }
        }
    }
    let stats = run_parallel(jobs);
    let mut grouped: HashMap<(Cell, usize), Vec<RunStats>> = HashMap::new();
    for (key, stat) in keys.into_iter().zip(stats) {
        grouped.entry(key).or_default().push(stat);
    }
    let data: SweepData = grouped
        .into_iter()
        .map(|(k, v)| (k, summarize(&v)))
        .collect();
    let mut memo = MEMO.lock().expect("memo lock");
    memo.get_or_insert_with(HashMap::new)
        .insert((hop, rate_mode, q), data.clone());
    data
}

/// The two offered loads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateMode {
    /// 2 Kbps per sender (Figs. 5, 6, 8, 9).
    High,
    /// 0.2 Kbps per sender (Figs. 7, 10).
    Low,
}

impl RateMode {
    /// The rate in bits per second.
    pub fn bps(self) -> f64 {
        match self {
            RateMode::High => 2_000.0,
            RateMode::Low => 200.0,
        }
    }
}

/// Goodput-vs-senders series (Figs. 5 and 8).
pub fn goodput_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::High, q);
    let mut out = Vec::new();
    for cell in cells_in_figure_order() {
        let mut s = Series::new(cell.label());
        for &n in &q.sender_counts() {
            if let Some(c) = data.get(&(cell, n)) {
                s.push_with_ci(n as f64, c.goodput.0, c.goodput.1);
            }
        }
        out.push(s);
    }
    out
}

/// Normalized-energy-vs-senders series (Figs. 6 and 9): the dual-radio
/// bursts plus Sensor-ideal and Sensor-header (the 802.11 model is
/// excluded, as in the paper: "very high energy consumption").
pub fn energy_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::High, q);
    let mut out = Vec::new();
    for &b in &BURSTS {
        let cell = Cell::Dual(b);
        let mut s = Series::new(cell.label());
        for &n in &q.sender_counts() {
            if let Some(c) = data.get(&(cell, n)) {
                s.push_with_ci(n as f64, c.j_per_kbit.0, c.j_per_kbit.1);
            }
        }
        out.push(s);
    }
    let mut ideal = Series::new("Sensor-ideal");
    let mut header = Series::new("Sensor-header");
    for &n in &q.sender_counts() {
        if let Some(c) = data.get(&(Cell::Sensor, n)) {
            ideal.push_with_ci(n as f64, c.j_per_kbit.0, c.j_per_kbit.1);
            header.push_with_ci(n as f64, c.j_per_kbit_header.0, c.j_per_kbit_header.1);
        }
    }
    out.push(ideal);
    out.push(header);
    out
}

/// Energy-vs-delay series at 0.2 Kbps (Figs. 7 and 10): one line per sender
/// count, one point per burst size.
pub fn energy_delay_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::Low, q);
    let mut out = Vec::new();
    for &n in &q.sender_counts() {
        let mut s = Series::new(format!("0.2Kbps-{n}"));
        for &b in &BURSTS {
            if let Some(c) = data.get(&(Cell::Dual(b), n)) {
                // Cells whose bursts never filled within the run deliver
                // nothing; they have no defined energy/delay point.
                if c.delay_s.0 > 0.0 && c.j_per_kbit.0.is_finite() && c.j_per_kbit.0 > 0.0 {
                    s.push_with_ci(c.delay_s.0, c.j_per_kbit.0, c.j_per_kbit.1);
                }
            }
        }
        out.push(s);
    }
    out
}

fn cells_in_figure_order() -> Vec<Cell> {
    let mut cells: Vec<Cell> = BURSTS.iter().map(|&b| Cell::Dual(b)).collect();
    cells.push(Cell::Sensor);
    cells.push(Cell::Dot11);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_parameters() {
        assert_eq!(Quality::Paper.runs(), 20);
        assert_eq!(Quality::Paper.duration(), SimDuration::from_secs(5000));
        assert_eq!(Quality::Paper.sender_counts().len(), 7);
        assert!(Quality::Quick.runs() < Quality::Paper.runs());
    }

    #[test]
    fn sweep_memoizes() {
        let a = sweep(Hop::Single, RateMode::High, Quality::Test);
        let b = sweep(Hop::Single, RateMode::High, Quality::Test);
        assert_eq!(a.len(), b.len());
        // Same cell stats out of the memo.
        let key = (Cell::Dual(100), 5);
        assert_eq!(a[&key].goodput, b[&key].goodput);
    }

    #[test]
    fn fig5_shape_dual_beats_sensor_at_load() {
        let series = goodput_series(Hop::Single, Quality::Test);
        let get = |label: &str| {
            series
                .iter()
                .find(|s| s.label() == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        // At 20 senders, the sensor model has collapsed well below the
        // moderate-burst dual-radio configurations (paper Fig. 5).
        let sensor = get("Sensor").points().last().unwrap().1;
        let dual100 = get("DualRadio-100").points().last().unwrap().1;
        let dot11 = get("802.11").points().last().unwrap().1;
        assert!(
            dual100 > sensor + 0.1,
            "dual {dual100} should beat sensor {sensor}"
        );
        assert!(dot11 > 0.9, "802.11 stays near 1: {dot11}");
    }

    #[test]
    fn fig6_shape_energy_ordering() {
        let series = energy_series(Hop::Single, Quality::Test);
        let get = |label: &str| series.iter().find(|s| s.label() == label).unwrap();
        let at_max = |s: &Series| s.points().last().unwrap().1;
        // Sensor-header costs more than Sensor-ideal; DualRadio-500 beats
        // both at load (paper Fig. 6).
        let ideal = at_max(get("Sensor-ideal"));
        let header = at_max(get("Sensor-header"));
        // Test-quality runs are too short for the big bursts to amortise;
        // DualRadio-100 reaches steady state quickly.
        let dual100 = at_max(get("DualRadio-100"));
        assert!(header > ideal, "overhearing costs: {header} vs {ideal}");
        assert!(dual100 < header, "dual {dual100} beats header {header}");
    }

    #[test]
    fn fig7_shape_energy_delay_tradeoff() {
        let series = energy_delay_series(Hop::Single, Quality::Test);
        // Each line: delay grows with burst size.
        for s in &series {
            let pts = s.points();
            assert!(pts.len() >= 2, "{} too short", s.label());
            assert!(
                pts.last().unwrap().0 > pts.first().unwrap().0,
                "{}: delay grows along the burst sweep",
                s.label()
            );
        }
    }
}
