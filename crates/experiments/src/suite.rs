//! The simulation sweeps behind Figures 5–10 (Section 4.1).
//!
//! A sweep is **data**: a [`SweepSpec`] names its axes (model/burst cells ×
//! sender counts × seeds at a rate and duration) and expands to concrete
//! jobs, each built through the validating
//! [`ScenarioBuilder`](bcp_simnet::ScenarioBuilder). [`sweep`] instantiates
//! the paper's grid and runs it across the worker pool; figure pairs that
//! share sweeps (5+6, 8+9) reuse the same data via a process-wide memo, so
//! `repro all` pays for each sweep once.

use bcp_sim::stats::{mean_ci95, Series};
use bcp_sim::time::SimDuration;
use bcp_simnet::{ModelKind, RunStats, Scenario, ScenarioBuilder, SpecError};
use std::collections::HashMap;
use std::sync::Mutex;

/// Sweep fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quality {
    /// Unit-test scale: tiny durations, one run — shape checks only.
    Test,
    /// Minutes-scale: 600 s runs, 3 seeds, 4 sender counts.
    #[default]
    Quick,
    /// Full 5000 s steady-state runs, but 5 seeds and 4 sender counts —
    /// paper-faithful shapes at a fraction of the compute.
    PaperLite,
    /// The paper's scale: 5000 s runs, 20 seeds, 7 sender counts.
    Paper,
}

impl Quality {
    /// Simulated duration per run.
    pub fn duration(self) -> SimDuration {
        match self {
            Quality::Test => SimDuration::from_secs(400),
            Quality::Quick => SimDuration::from_secs(600),
            Quality::PaperLite | Quality::Paper => SimDuration::from_secs(5_000),
        }
    }

    /// Seeded repetitions per cell (the paper averages 20 runs).
    pub fn runs(self) -> usize {
        match self {
            Quality::Test => 1,
            Quality::Quick => 3,
            Quality::PaperLite => 5,
            Quality::Paper => 20,
        }
    }

    /// The sender-count axis (the paper sweeps 5–35).
    pub fn sender_counts(self) -> Vec<usize> {
        match self {
            Quality::Test => vec![5, 20],
            Quality::Quick | Quality::PaperLite => vec![5, 15, 25, 35],
            Quality::Paper => vec![5, 10, 15, 20, 25, 30, 35],
        }
    }
}

/// The paper's burst-size axis (packets of 32 B).
pub const BURSTS: [usize; 5] = [10, 100, 500, 1000, 2500];

/// Which of the two radio geometries a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// Lucent 11 Mbps at sensor range: no hop advantage (Figs. 5–7).
    Single,
    /// Cabletron reaching the sink in one hop (Figs. 8–10).
    Multi,
}

/// One sweep cell: model and burst size (bursts only matter to DualRadio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// The pure sensor network.
    Sensor,
    /// The pure 802.11 network.
    Dot11,
    /// BCP with the given burst size in packets.
    Dual(usize),
}

impl Cell {
    fn label(&self) -> String {
        match self {
            Cell::Sensor => "Sensor".into(),
            Cell::Dot11 => "802.11".into(),
            Cell::Dual(b) => format!("DualRadio-{b}"),
        }
    }
}

/// Averaged statistics of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Mean goodput and CI half-width.
    pub goodput: (f64, f64),
    /// Mean normalized energy (J/Kbit) and CI.
    pub j_per_kbit: (f64, f64),
    /// Sensor-header-accounted normalized energy and CI.
    pub j_per_kbit_header: (f64, f64),
    /// Mean delay (s) and CI.
    pub delay_s: (f64, f64),
}

fn summarize(runs: &[RunStats]) -> CellStats {
    let pick = |f: &dyn Fn(&RunStats) -> f64, delivered_only: bool| {
        let vals: Vec<f64> = runs
            .iter()
            .filter(|r| !delivered_only || r.metrics.delivered_packets > 0)
            .map(f)
            .filter(|v| v.is_finite())
            .collect();
        mean_ci95(&vals)
    };
    CellStats {
        goodput: pick(&|r| r.goodput, false),
        // Energy per bit and delay are only defined over runs that
        // delivered something (short runs with huge bursts may not).
        j_per_kbit: pick(&|r| r.j_per_kbit, true),
        j_per_kbit_header: pick(&|r| r.j_per_kbit_header, true),
        delay_s: pick(&|r| r.mean_delay_s, true),
    }
}

/// Sizes the sweep-level worker pool so that sweep workers × per-run
/// shard threads never oversubscribes the `total` thread budget: the
/// budget is divided by the largest per-job shard count, clamped to
/// `[1, jobs]`. With unsharded jobs (`max_shards == 1`) this is the plain
/// `min(total, jobs)`.
pub fn sweep_worker_budget(total: usize, jobs: usize, max_shards: usize) -> usize {
    (total / max_shards.max(1)).clamp(1, jobs.max(1))
}

/// Runs `jobs` scenarios across the worker pool, preserving order. The
/// pool is sized by [`bcp_sim::threads::worker_count`], so one
/// `BCP_THREADS` variable caps both this sweep-level pool and each run's
/// intra-run shard pool. When jobs carry `shards > 1` the sweep-level
/// budget is divided by the largest shard count
/// ([`sweep_worker_budget`]), so the two layers multiply out to at most
/// the machine's thread budget instead of oversubscribing it.
pub fn run_parallel(jobs: Vec<Scenario>) -> Vec<RunStats> {
    let max_shards = jobs.iter().map(|j| j.shards.max(1)).max().unwrap_or(1);
    // The unclamped machine/BCP_THREADS budget: with sharded jobs, fewer
    // sweep workers than jobs can still saturate it (workers × shards),
    // so the job-count clamp belongs inside sweep_worker_budget, after
    // the division.
    let total = bcp_sim::threads::worker_count(usize::MAX);
    let n_workers = sweep_worker_budget(total, jobs.len(), max_shards);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunStats>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let stats = jobs[i].run();
                *results[i].lock().expect("result lock") = Some(stats);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("lock").expect("job ran"))
        .collect()
}

/// The full sweep for one geometry: every cell × sender count, averaged.
pub type SweepData = HashMap<(Cell, usize), CellStats>;

/// Memo key → sweep results (one entry per (geometry, rate, quality)).
type SweepMemo = HashMap<(Hop, RateMode, Quality), SweepData>;

/// A declarative sweep grid: the cartesian product of its axes, expanded
/// to jobs and executed through the validating scenario builder.
///
/// # Examples
///
/// ```
/// use bcp_experiments::suite::{Hop, Quality, RateMode, SweepSpec};
///
/// let spec = SweepSpec::paper_grid(Hop::Single, RateMode::High, Quality::Test);
/// let jobs = spec.jobs();
/// // cells × sender counts × seeds, in deterministic order.
/// assert_eq!(jobs.len(), spec.cells.len() * spec.sender_counts.len() * spec.runs);
/// let scenario = spec.scenario(&jobs[0]).expect("grid cells are valid");
/// assert_eq!(scenario.duration, spec.duration);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Which radio geometry every job uses.
    pub hop: Hop,
    /// Per-sender offered load in bits per second.
    pub rate_bps: f64,
    /// The model/burst axis.
    pub cells: Vec<Cell>,
    /// The sender-count axis.
    pub sender_counts: Vec<usize>,
    /// Seeded repetitions per cell (seeds `1..=runs`).
    pub runs: usize,
    /// Simulated duration per run.
    pub duration: SimDuration,
}

/// One expanded grid point of a [`SweepSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepJob {
    /// The model/burst cell.
    pub cell: Cell,
    /// Number of senders.
    pub senders: usize,
    /// Master seed of the run.
    pub seed: u64,
}

impl SweepSpec {
    /// The paper's Section 4.1 grid at a given quality: Sensor and 802.11
    /// baselines plus one dual-radio cell per burst size in [`BURSTS`].
    pub fn paper_grid(hop: Hop, rate_mode: RateMode, q: Quality) -> Self {
        let mut cells: Vec<Cell> = vec![Cell::Sensor, Cell::Dot11];
        cells.extend(BURSTS.iter().map(|&b| Cell::Dual(b)));
        SweepSpec {
            hop,
            rate_bps: rate_mode.bps(),
            cells,
            sender_counts: q.sender_counts(),
            runs: q.runs(),
            duration: q.duration(),
        }
    }

    /// Expands the grid to jobs in deterministic (cell, senders, seed)
    /// order.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.cells.len() * self.sender_counts.len() * self.runs);
        for &cell in &self.cells {
            for &senders in &self.sender_counts {
                for seed in 1..=self.runs as u64 {
                    jobs.push(SweepJob {
                        cell,
                        senders,
                        seed,
                    });
                }
            }
        }
        jobs
    }

    /// Builds one job's scenario through the validating builder.
    pub fn scenario(&self, job: &SweepJob) -> Result<Scenario, SpecError> {
        let (model, burst) = match job.cell {
            Cell::Sensor => (ModelKind::Sensor, 10),
            Cell::Dot11 => (ModelKind::Dot11, 10),
            Cell::Dual(b) => (ModelKind::DualRadio, b),
        };
        let b = match self.hop {
            Hop::Single => ScenarioBuilder::single_hop(model, job.senders, burst, job.seed),
            Hop::Multi => ScenarioBuilder::multi_hop(model, job.senders, burst, job.seed),
        };
        b.rate_bps(self.rate_bps).duration(self.duration).build()
    }

    /// Expands, builds, runs and summarizes the whole grid. Fails fast if
    /// any grid point is an invalid scenario (before burning any compute).
    pub fn run(&self) -> Result<SweepData, SpecError> {
        let jobs = self.jobs();
        let scenarios = jobs
            .iter()
            .map(|j| self.scenario(j))
            .collect::<Result<Vec<_>, _>>()?;
        let stats = run_parallel(scenarios);
        let mut grouped: HashMap<(Cell, usize), Vec<RunStats>> = HashMap::new();
        for (job, stat) in jobs.into_iter().zip(stats) {
            grouped
                .entry((job.cell, job.senders))
                .or_default()
                .push(stat);
        }
        Ok(grouped
            .into_iter()
            .map(|(k, v)| (k, summarize(&v)))
            .collect())
    }
}

/// Runs (or recalls) the paper-grid sweep for `(hop, rate)` at the given
/// quality.
pub fn sweep(hop: Hop, rate_mode: RateMode, q: Quality) -> SweepData {
    static MEMO: Mutex<Option<SweepMemo>> = Mutex::new(None);
    {
        let memo = MEMO.lock().expect("memo lock");
        if let Some(map) = memo.as_ref() {
            if let Some(data) = map.get(&(hop, rate_mode, q)) {
                return data.clone();
            }
        }
    }
    let data = SweepSpec::paper_grid(hop, rate_mode, q)
        .run()
        .expect("the paper grid is a valid sweep");
    let mut memo = MEMO.lock().expect("memo lock");
    memo.get_or_insert_with(HashMap::new)
        .insert((hop, rate_mode, q), data.clone());
    data
}

/// Parses a `.sweep` file into a [`SweepSpec`].
///
/// The format mirrors `.scn`: one `key = value` per line, `#` comments.
/// Unset keys default to the paper grid at `quick` quality. Keys:
///
/// ```text
/// hop       = single | multi
/// rate      = high | low            # or rate_bps = <f64>
/// cells     = sensor, dot11, dual:100, dual:500
/// senders   = 5, 15, 25
/// runs      = 3
/// duration_s = 600
/// ```
pub fn parse_sweep(text: &str) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec::paper_grid(Hop::Single, RateMode::High, Quality::Quick);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| at(format!("expected key = value, got {line:?}")))?;
        match key {
            "hop" => {
                spec.hop = match value {
                    "single" => Hop::Single,
                    "multi" => Hop::Multi,
                    other => return Err(at(format!("hop must be single|multi, got {other:?}"))),
                }
            }
            "rate" => {
                spec.rate_bps = match value {
                    "high" => RateMode::High.bps(),
                    "low" => RateMode::Low.bps(),
                    other => return Err(at(format!("rate must be high|low, got {other:?}"))),
                }
            }
            "rate_bps" => {
                spec.rate_bps = value
                    .parse()
                    .map_err(|e| at(format!("bad rate_bps {value:?}: {e}")))?
            }
            "cells" => {
                spec.cells = value
                    .split(',')
                    .map(|c| match c.trim() {
                        "sensor" => Ok(Cell::Sensor),
                        "dot11" => Ok(Cell::Dot11),
                        other => match other.strip_prefix("dual:") {
                            Some(b) => b
                                .parse()
                                .map(Cell::Dual)
                                .map_err(|e| at(format!("bad burst in {other:?}: {e}"))),
                            None => Err(at(format!(
                                "cell must be sensor|dot11|dual:<burst>, got {other:?}"
                            ))),
                        },
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if spec.cells.is_empty() {
                    return Err(at("cells must not be empty".into()));
                }
            }
            "senders" => {
                spec.sender_counts = value
                    .split(',')
                    .map(|n| {
                        n.trim()
                            .parse()
                            .map_err(|e| at(format!("bad sender count {n:?}: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if spec.sender_counts.is_empty() {
                    return Err(at("senders must not be empty".into()));
                }
            }
            "runs" => {
                spec.runs = value
                    .parse()
                    .map_err(|e| at(format!("bad runs {value:?}: {e}")))?;
                if spec.runs == 0 {
                    return Err(at("runs must be at least 1".into()));
                }
            }
            "duration_s" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|e| at(format!("bad duration_s {value:?}: {e}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(at("duration_s must be positive".into()));
                }
                spec.duration = SimDuration::from_secs_f64(secs);
            }
            other => return Err(at(format!("unknown key {other:?}"))),
        }
    }
    Ok(spec)
}

/// The two offered loads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateMode {
    /// 2 Kbps per sender (Figs. 5, 6, 8, 9).
    High,
    /// 0.2 Kbps per sender (Figs. 7, 10).
    Low,
}

impl RateMode {
    /// The rate in bits per second.
    pub fn bps(self) -> f64 {
        match self {
            RateMode::High => 2_000.0,
            RateMode::Low => 200.0,
        }
    }
}

/// Goodput-vs-senders series (Figs. 5 and 8).
pub fn goodput_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::High, q);
    let mut out = Vec::new();
    for cell in cells_in_figure_order() {
        let mut s = Series::new(cell.label());
        for &n in &q.sender_counts() {
            if let Some(c) = data.get(&(cell, n)) {
                s.push_with_ci(n as f64, c.goodput.0, c.goodput.1);
            }
        }
        out.push(s);
    }
    out
}

/// Normalized-energy-vs-senders series (Figs. 6 and 9): the dual-radio
/// bursts plus Sensor-ideal and Sensor-header (the 802.11 model is
/// excluded, as in the paper: "very high energy consumption").
pub fn energy_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::High, q);
    let mut out = Vec::new();
    for &b in &BURSTS {
        let cell = Cell::Dual(b);
        let mut s = Series::new(cell.label());
        for &n in &q.sender_counts() {
            if let Some(c) = data.get(&(cell, n)) {
                s.push_with_ci(n as f64, c.j_per_kbit.0, c.j_per_kbit.1);
            }
        }
        out.push(s);
    }
    let mut ideal = Series::new("Sensor-ideal");
    let mut header = Series::new("Sensor-header");
    for &n in &q.sender_counts() {
        if let Some(c) = data.get(&(Cell::Sensor, n)) {
            ideal.push_with_ci(n as f64, c.j_per_kbit.0, c.j_per_kbit.1);
            header.push_with_ci(n as f64, c.j_per_kbit_header.0, c.j_per_kbit_header.1);
        }
    }
    out.push(ideal);
    out.push(header);
    out
}

/// Energy-vs-delay series at 0.2 Kbps (Figs. 7 and 10): one line per sender
/// count, one point per burst size.
pub fn energy_delay_series(hop: Hop, q: Quality) -> Vec<Series> {
    let data = sweep(hop, RateMode::Low, q);
    let mut out = Vec::new();
    for &n in &q.sender_counts() {
        let mut s = Series::new(format!("0.2Kbps-{n}"));
        for &b in &BURSTS {
            if let Some(c) = data.get(&(Cell::Dual(b), n)) {
                // Cells whose bursts never filled within the run deliver
                // nothing; they have no defined energy/delay point.
                if c.delay_s.0 > 0.0 && c.j_per_kbit.0.is_finite() && c.j_per_kbit.0 > 0.0 {
                    s.push_with_ci(c.delay_s.0, c.j_per_kbit.0, c.j_per_kbit.1);
                }
            }
        }
        out.push(s);
    }
    out
}

fn cells_in_figure_order() -> Vec<Cell> {
    let mut cells: Vec<Cell> = BURSTS.iter().map(|&b| Cell::Dual(b)).collect();
    cells.push(Cell::Sensor);
    cells.push(Cell::Dot11);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_parameters() {
        assert_eq!(Quality::Paper.runs(), 20);
        assert_eq!(Quality::Paper.duration(), SimDuration::from_secs(5000));
        assert_eq!(Quality::Paper.sender_counts().len(), 7);
        assert!(Quality::Quick.runs() < Quality::Paper.runs());
    }

    #[test]
    fn worker_budget_divides_by_shards_instead_of_multiplying() {
        // Unsharded: plain min(total, jobs).
        assert_eq!(sweep_worker_budget(16, 32, 1), 16);
        assert_eq!(sweep_worker_budget(16, 4, 1), 4);
        // Sharded jobs: the sweep pool shrinks so workers × shards ≤ total.
        assert_eq!(sweep_worker_budget(16, 32, 4), 4);
        assert_eq!(sweep_worker_budget(16, 32, 8), 2);
        // More shards than threads: still at least one worker.
        assert_eq!(sweep_worker_budget(4, 32, 16), 1);
        // Degenerate inputs never panic or return zero.
        assert_eq!(sweep_worker_budget(0, 0, 0), 1);
        assert_eq!(sweep_worker_budget(8, 1, 3), 1);
    }

    #[test]
    fn sharded_jobs_shrink_the_sweep_pool_end_to_end() {
        // Two sharded scenarios through run_parallel: budget 16 threads,
        // shards 4 → at most 4 sweep workers each driving a 4-thread shard
        // pool. The observable contract here is order-preserving results
        // that match the sequential runs exactly.
        let mk = |seed| {
            Scenario::single_hop(ModelKind::Sensor, 3, 10, seed)
                .with_duration(SimDuration::from_secs(30))
                .with_shards(4)
        };
        let parallel = run_parallel(vec![mk(1), mk(2)]);
        assert_eq!(parallel.len(), 2);
        for (i, seed) in [1u64, 2].iter().enumerate() {
            let solo = mk(*seed).run();
            assert_eq!(parallel[i].events, solo.events, "seed {seed}");
            assert_eq!(
                parallel[i].metrics.delivered_packets,
                solo.metrics.delivered_packets
            );
        }
    }

    #[test]
    fn sweep_spec_expands_the_full_grid_through_the_builder() {
        let spec = SweepSpec::paper_grid(Hop::Multi, RateMode::Low, Quality::Test);
        let jobs = spec.jobs();
        assert_eq!(
            jobs.len(),
            spec.cells.len() * spec.sender_counts.len() * spec.runs
        );
        // Deterministic order: seeds innermost, starting at 1.
        assert_eq!(jobs[0].seed, 1);
        let s = spec.scenario(&jobs[0]).expect("valid grid point");
        assert_eq!(s.rate_bps, 200.0);
        assert_eq!(s.duration, Quality::Test.duration());
        assert_eq!(s.high_profile.name, "Cabletron");
        // An impossible grid point fails fast instead of panicking.
        let bad = SweepSpec {
            sender_counts: vec![36],
            ..spec
        };
        assert!(bad.scenario(&bad.jobs()[0]).is_err());
    }

    #[test]
    fn sweep_files_parse_with_defaults_and_overrides() {
        // Empty text: the quick-quality paper grid.
        let dflt = parse_sweep("").expect("defaults parse");
        assert_eq!(dflt.hop, Hop::Single);
        assert_eq!(dflt.rate_bps, RateMode::High.bps());
        assert_eq!(dflt.runs, Quality::Quick.runs());
        assert_eq!(dflt.cells.len(), 2 + BURSTS.len());
        // Full override, with comments and spacing noise.
        let spec = parse_sweep(
            "# a small smoke sweep\n\
             hop = multi\n\
             rate = low   # 0.2 Kbps\n\
             cells = sensor, dual:100\n\
             senders = 5, 15\n\
             runs = 2\n\
             duration_s = 120\n",
        )
        .expect("overrides parse");
        assert_eq!(spec.hop, Hop::Multi);
        assert_eq!(spec.rate_bps, 200.0);
        assert_eq!(spec.cells, vec![Cell::Sensor, Cell::Dual(100)]);
        assert_eq!(spec.sender_counts, vec![5, 15]);
        assert_eq!(spec.runs, 2);
        assert_eq!(spec.duration, SimDuration::from_secs(120));
        assert_eq!(spec.jobs().len(), 2 * 2 * 2);
        // Errors carry the offending line number.
        for (bad, needle) in [
            ("hop = sideways\n", "line 1"),
            ("runs = 0\n", "at least 1"),
            ("cells = warp:9\n", "sensor|dot11|dual"),
            ("rate = high\nnonsense\n", "line 2"),
            ("duration_s = -5\n", "positive"),
        ] {
            let err = parse_sweep(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn sweep_memoizes() {
        let a = sweep(Hop::Single, RateMode::High, Quality::Test);
        let b = sweep(Hop::Single, RateMode::High, Quality::Test);
        assert_eq!(a.len(), b.len());
        // Same cell stats out of the memo.
        let key = (Cell::Dual(100), 5);
        assert_eq!(a[&key].goodput, b[&key].goodput);
    }

    #[test]
    fn fig5_shape_dual_beats_sensor_at_load() {
        let series = goodput_series(Hop::Single, Quality::Test);
        let get = |label: &str| {
            series
                .iter()
                .find(|s| s.label() == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        // At 20 senders, the sensor model has collapsed well below the
        // moderate-burst dual-radio configurations (paper Fig. 5).
        let sensor = get("Sensor").points().last().unwrap().1;
        let dual100 = get("DualRadio-100").points().last().unwrap().1;
        let dot11 = get("802.11").points().last().unwrap().1;
        assert!(
            dual100 > sensor + 0.1,
            "dual {dual100} should beat sensor {sensor}"
        );
        assert!(dot11 > 0.9, "802.11 stays near 1: {dot11}");
    }

    #[test]
    fn fig6_shape_energy_ordering() {
        let series = energy_series(Hop::Single, Quality::Test);
        let get = |label: &str| series.iter().find(|s| s.label() == label).unwrap();
        let at_max = |s: &Series| s.points().last().unwrap().1;
        // Sensor-header costs more than Sensor-ideal; DualRadio-500 beats
        // both at load (paper Fig. 6).
        let ideal = at_max(get("Sensor-ideal"));
        let header = at_max(get("Sensor-header"));
        // Test-quality runs are too short for the big bursts to amortise;
        // DualRadio-100 reaches steady state quickly.
        let dual100 = at_max(get("DualRadio-100"));
        assert!(header > ideal, "overhearing costs: {header} vs {ideal}");
        assert!(dual100 < header, "dual {dual100} beats header {header}");
    }

    #[test]
    fn fig7_shape_energy_delay_tradeoff() {
        let series = energy_delay_series(Hop::Single, Quality::Test);
        // Each line: delay grows with burst size.
        for s in &series {
            let pts = s.points();
            assert!(pts.len() >= 2, "{} too short", s.label());
            assert!(
                pts.last().unwrap().0 > pts.first().unwrap().0,
                "{}: delay grows along the burst sweep",
                s.label()
            );
        }
    }
}
