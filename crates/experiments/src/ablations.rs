//! Ablation studies beyond the paper's figures.
//!
//! Each ablation isolates one design decision DESIGN.md calls out:
//!
//! * **shortcuts** — Section 3's route optimization (learned high-radio
//!   shortcuts vs plain low-parent relaying vs the evaluation's BFS tree).
//! * **overhearing** — the sensor model's accounting ladder: ideal →
//!   header-only → full-frame overhearing.
//! * **loss** — goodput robustness of BCP vs the sensor network as the
//!   channel degrades.
//! * **adaptive** — the paper's future-work extension: retransmission-aware
//!   thresholds vs the static rule of thumb under a lossy high radio.
//! * **link_asymmetry** — the received-power layer: reach and lifetime as
//!   log-normal shadowing widens, per radio class (the mote budgets have
//!   far less SNR margin than the WLAN cards, so the same sigma hits the
//!   low-power network first).

use crate::output::Output;
use crate::registry::RunCtx;
use crate::suite::{run_parallel, Quality};
use bcp_analysis::DualRadioLink;
use bcp_core::adaptive::AdaptiveThreshold;
use bcp_net::loss::LossModel;
use bcp_net::propagation::PhysModel;
use bcp_power::{Battery, PowerConfig};
use bcp_radio::profile::{lucent_11m, micaz};
use bcp_sim::stats::{mean_ci95, Series};
use bcp_sim::time::SimDuration;
use bcp_simnet::{HighRoute, ModelKind, Scenario, ScenarioBuilder};

fn senders(q: Quality) -> usize {
    match q {
        Quality::Test => 5,
        _ => 15,
    }
}

/// Averages a metric over seeded repetitions of one scenario template.
fn averaged(
    q: Quality,
    build: impl Fn(u64) -> Scenario,
    metric: impl Fn(&bcp_simnet::RunStats) -> f64,
) -> (f64, f64) {
    let jobs: Vec<Scenario> = (0..q.runs() as u64).map(|s| build(s + 1)).collect();
    let stats = run_parallel(jobs);
    let vals: Vec<f64> = stats.iter().map(metric).filter(|v| v.is_finite()).collect();
    mean_ci95(&vals)
}

/// Route optimization ablation: a mid-range high radio (100 m on the 40 m
/// grid) where learned shortcuts can skip relays.
pub fn shortcuts(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let listen = SimDuration::from_millis(200);
    let modes: [(&str, HighRoute); 3] = [
        (
            "low-parents",
            HighRoute::LowParents {
                shortcuts: false,
                listen,
            },
        ),
        (
            "with-shortcuts",
            HighRoute::LowParents {
                shortcuts: true,
                listen,
            },
        ),
        ("bfs-tree", HighRoute::Tree),
    ];
    let mut energy = Vec::new();
    let mut delay = Vec::new();
    for (label, mode) in modes {
        let build = |seed: u64| {
            ScenarioBuilder::single_hop(ModelKind::DualRadio, senders(q), 500, seed)
                .duration(q.duration())
                .high_route(mode)
                // Mid-range card: more than one grid hop, less than the
                // whole grid — the regime where shortcut learning can win.
                .high_profile(bcp_radio::profile::cabletron().with_range(100.0))
                .build()
                .expect("the shortcuts ablation is valid")
        };
        let (e, eci) = averaged(q, build, |r| r.j_per_kbit);
        let (d, dci) = averaged(q, build, |r| r.mean_delay_s);
        let mut se = Series::new(label);
        se.push_with_ci(0.0, e, eci);
        energy.push(se);
        let mut sd = Series::new(format!("{label}-delay"));
        sd.push_with_ci(0.0, d, dci);
        delay.push(sd);
    }
    let mut series = energy;
    series.extend(delay);
    Output::Figure {
        xlabel: "(single point)".into(),
        ylabel: "J/Kbit (energy rows) and s (delay rows)".into(),
        series,
        notes: vec![
            "Cabletron clamped to 100 m on the 40 m grid; burst 500".into(),
            "shortcut learning pays a 200 ms post-burst listen window".into(),
        ],
    }
}

/// Overhearing accounting ladder for the sensor model.
pub fn overhearing(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let counts = q.sender_counts();
    let mut ideal = Series::new("Sensor-ideal");
    let mut header = Series::new("Sensor-header");
    let mut full = Series::new("Sensor-full-overhear");
    for &n in &counts {
        let build = |seed: u64| {
            ScenarioBuilder::single_hop(ModelKind::Sensor, n, 10, seed)
                .duration(q.duration())
                .build()
                .expect("the overhearing ablation is valid")
        };
        let (a, aci) = averaged(q, build, |r| r.j_per_kbit);
        let (b, bci) = averaged(q, build, |r| r.j_per_kbit_header);
        let (c, cci) = averaged(q, build, |r| r.j_per_kbit_overhear_full);
        ideal.push_with_ci(n as f64, a, aci);
        header.push_with_ci(n as f64, b, bci);
        full.push_with_ci(n as f64, c, cci);
    }
    Output::Figure {
        xlabel: "senders".into(),
        ylabel: "Normalized energy (J/Kbit)".into(),
        series: vec![ideal, header, full],
        notes: vec!["ideal charges tx+rx only; header adds per-frame header \
             overhearing (the paper's second model); full charges whole \
             overheard frames"
            .into()],
    }
}

/// Channel-degradation robustness: BCP vs the sensor network.
pub fn loss(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let rates = [0.0, 0.05, 0.1, 0.2, 0.4];
    let mut dual = Series::new("DualRadio-500");
    let mut sensor = Series::new("Sensor");
    for &p in &rates {
        let build_dual = |seed: u64| {
            ScenarioBuilder::single_hop(ModelKind::DualRadio, senders(q), 500, seed)
                .duration(q.duration())
                .loss(loss_of(p), loss_of(p))
                .build()
                .expect("the loss ablation is valid")
        };
        let build_sensor = |seed: u64| {
            ScenarioBuilder::single_hop(ModelKind::Sensor, senders(q), 10, seed)
                .duration(q.duration())
                .loss(loss_of(p), LossModel::Perfect)
                .build()
                .expect("the loss ablation is valid")
        };
        let (g, gci) = averaged(q, build_dual, |r| r.goodput);
        dual.push_with_ci(p, g, gci);
        let (g, gci) = averaged(q, build_sensor, |r| r.goodput);
        sensor.push_with_ci(p, g, gci);
    }
    Output::Figure {
        xlabel: "loss_prob".into(),
        ylabel: "Goodput".into(),
        series: vec![dual, sensor],
        notes: vec!["Bernoulli loss applied per frame on both radio classes".into()],
    }
}

fn loss_of(p: f64) -> LossModel {
    if p == 0.0 {
        LossModel::Perfect
    } else {
        LossModel::bernoulli(p)
    }
}

/// Static vs retransmission-adaptive thresholds under a lossy high radio.
pub fn adaptive(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let rates = [0.0, 0.1, 0.2, 0.3];
    let mut static_s = Series::new("static-alpha-s*");
    let mut adaptive_s = Series::new("adaptive");
    let clean = DualRadioLink::new(micaz(), lucent_11m());
    let static_threshold = {
        let s = clean.break_even_bytes().expect("feasible") * 2.0;
        (s.ceil() as usize).div_ceil(32).max(1)
    };
    for &p in &rates {
        // The adaptive controller converges to retx ≈ 1/(1-p) per frame.
        let mut ctl = AdaptiveThreshold::new(clean.clone(), 2.0, 0.5);
        for _ in 0..50 {
            ctl.observe_high(1.0 / (1.0 - f64::min(p, 0.9)));
        }
        let adaptive_threshold = ctl.threshold_bytes().div_ceil(32).max(1);
        for (series, burst) in [
            (&mut static_s, static_threshold),
            (&mut adaptive_s, adaptive_threshold),
        ] {
            let build = |seed: u64| {
                ScenarioBuilder::single_hop(ModelKind::DualRadio, senders(q), burst, seed)
                    .duration(q.duration())
                    .loss(LossModel::Perfect, loss_of(p))
                    .build()
                    .expect("the adaptive ablation is valid")
            };
            let (e, eci) = averaged(q, build, |r| r.j_per_kbit);
            series.push_with_ci(p, e, eci);
        }
    }
    Output::Figure {
        xlabel: "high_radio_loss".into(),
        ylabel: "Normalized energy (J/Kbit)".into(),
        series: vec![static_s, adaptive_s],
        notes: vec!["adaptive thresholds grow with observed retransmissions \
             (the paper's stated future work, Section 3)"
            .into()],
    }
}

/// Received-power link asymmetry: reach (delivery ratio) and lifetime
/// (time to first death) as log-normal shadowing sigma grows, for the
/// low-radio-only sensor network and the dual-radio (high-radio bulk)
/// network. With `phys = logn` the per-class link budgets matter: a
/// shadowing draw that deafens a mote link can leave the WLAN link —
/// with its larger SNR margin — untouched, so the two classes degrade
/// asymmetrically where the disk model degraded them identically.
pub fn link_asymmetry(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let sigmas = [0.0, 2.0, 4.0, 6.0];
    let logn = |sigma_db: f64| PhysModel::LogNormal {
        path_loss_exp: 3.0,
        sigma_db,
        seed: None,
    };
    let reach = |r: &bcp_simnet::RunStats| {
        let g = r.metrics.generated_packets;
        if g == 0 {
            f64::NAN
        } else {
            r.metrics.delivered_packets as f64 / g as f64
        }
    };
    // Sender batteries sized to die from idle draw alone well inside the
    // horizon, so the lifetime rows always have a death to report; what
    // shadowing moves is *when* (retransmissions and LPL re-listens).
    let horizon_s = q.duration().as_secs_f64();
    let cap = Battery::ideal_joules(micaz().p_idle.as_watts() * horizon_s * 0.3);
    let mut series = Vec::new();
    for (label, model, burst) in [
        ("Sensor-low", ModelKind::Sensor, 10),
        ("DualRadio-high", ModelKind::DualRadio, 500),
    ] {
        let mut s_reach = Series::new(format!("{label}-reach"));
        let mut s_life = Series::new(format!("{label}-lifetime-s"));
        for &sigma in &sigmas {
            let build = |seed: u64| {
                ScenarioBuilder::multi_hop(model, senders(q), burst, seed)
                    .duration(q.duration())
                    .phys(logn(sigma))
                    .build()
                    .expect("the link_asymmetry ablation is valid")
            };
            let (r, rci) = averaged(q, build, reach);
            s_reach.push_with_ci(sigma, r, rci);
            let build_starved = |seed: u64| {
                ScenarioBuilder::multi_hop(model, senders(q), burst, seed)
                    .duration(q.duration())
                    .phys(logn(sigma))
                    .power(PowerConfig::with_battery(cap.clone()))
                    .build()
                    .expect("the link_asymmetry ablation is valid")
            };
            let (t, tci) = averaged(q, build_starved, |r| {
                r.time_to_first_death_s.unwrap_or(f64::NAN)
            });
            s_life.push_with_ci(sigma, t, tci);
        }
        series.push(s_reach);
        series.push(s_life);
    }
    Output::Figure {
        xlabel: "shadowing_sigma_db".into(),
        ylabel: "delivery ratio (reach rows) and s (lifetime rows)".into(),
        series,
        notes: vec![
            "phys = logn:3.0/<sigma>; sigma 0 reproduces the disk decode set".into(),
            "lifetime rows starve every non-sink node at 30% of idle-horizon energy".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhearing_ladder_is_ordered() {
        let out = overhearing(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = out else {
            panic!("figure expected");
        };
        let (ideal, header, full) = (&series[0], &series[1], &series[2]);
        for i in 0..ideal.len() {
            let a = ideal.points()[i].1;
            let b = header.points()[i].1;
            let c = full.points()[i].1;
            assert!(a <= b + 1e-12, "ideal {a} <= header {b}");
            assert!(b <= c + 1e-12, "header {b} <= full {c}");
        }
    }

    #[test]
    fn loss_hurts_goodput_monotonically_enough() {
        let out = loss(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = out else {
            panic!("figure expected");
        };
        let dual = &series[0];
        let first = dual.points().first().unwrap().1;
        let last = dual.points().last().unwrap().1;
        assert!(last < first, "40% loss must hurt: {first} -> {last}");
    }

    #[test]
    fn link_asymmetry_sweeps_both_classes_over_sigma() {
        let out = link_asymmetry(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = out else {
            panic!("figure expected");
        };
        assert_eq!(series.len(), 4, "reach + lifetime per radio class");
        for s in &series {
            assert_eq!(s.len(), 4, "{}: one point per sigma", s.label());
        }
        for s in series.iter().filter(|s| s.label().contains("reach")) {
            for &(sigma, v, _) in s.points() {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{}: reach at sigma {sigma} is a ratio, got {v}",
                    s.label()
                );
            }
        }
        for s in series.iter().filter(|s| s.label().contains("lifetime")) {
            for &(sigma, v, _) in s.points() {
                assert!(
                    v.is_finite() && v > 0.0,
                    "{}: starved nodes die at a finite instant (sigma {sigma}, got {v})",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn adaptive_threshold_grows_with_loss() {
        // Verify the controller side deterministically (the sim side is
        // covered by the figure run).
        let clean = DualRadioLink::new(micaz(), lucent_11m());
        let mut thresholds = Vec::new();
        for p in [0.0f64, 0.1, 0.2, 0.3] {
            let mut ctl = AdaptiveThreshold::new(clean.clone(), 2.0, 0.5);
            for _ in 0..50 {
                ctl.observe_high(1.0 / (1.0 - p));
            }
            thresholds.push(ctl.threshold_bytes());
        }
        assert!(
            thresholds.windows(2).all(|w| w[0] <= w[1]),
            "thresholds must not shrink with loss: {thresholds:?}"
        );
        assert!(thresholds[3] > thresholds[0]);
    }
}
