//! Network-lifetime experiment: the J/Kbit savings of Figs. 6 and 9, recast
//! as the quantity they exist to serve — how long the network lives.
//!
//! Every node gets the same finite battery; the sweep compares **time to
//! first death** across the paper's three stacks (Sensor, 802.11,
//! DualRadio/BCP) as the battery capacity grows. The always-on 802.11
//! model burns its idle power and dies an order of magnitude earlier;
//! BCP tracks the sensor baseline while moving bulk data — the paper's
//! energy argument, as a lifetime-extension headline.

use crate::fork::battery_sweeps;
use crate::output::Output;
use crate::registry::RunCtx;
use crate::suite::Quality;
use bcp_sim::stats::{mean_ci95, Series};
use bcp_sim::time::SimDuration;
use bcp_simnet::{ModelKind, Scenario, ScenarioBuilder};

/// The battery-capacity axis (J): fractions of the energy a MicaZ-class
/// node idles away over the run, so deaths land inside the simulated
/// window at every quality.
pub fn capacities(q: Quality) -> Vec<f64> {
    let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
    let horizon = q.duration().as_secs_f64();
    let fractions: &[f64] = match q {
        Quality::Test => &[0.3, 0.6],
        _ => &[0.2, 0.4, 0.6, 0.8],
    };
    fractions.iter().map(|f| f * idle_w * horizon).collect()
}

fn senders(q: Quality) -> usize {
    match q {
        Quality::Test => 5,
        _ => 15,
    }
}

/// The registered `lifetime` experiment.
pub fn lifetime(ctx: &RunCtx) -> Output {
    let q = ctx.quality;
    let models: [(&str, ModelKind, usize); 3] = [
        ("Sensor", ModelKind::Sensor, 10),
        ("802.11", ModelKind::Dot11, 10),
        ("DualRadio-100", ModelKind::DualRadio, 100),
    ];
    let horizon = q.duration().as_secs_f64();
    let caps = capacities(q);
    // The capacity axis shares its opening seconds: with shortest-hop
    // routes the battery only matters once something can die, so each
    // (model, seed) runs one mains-powered warm prefix and forks the
    // whole capacity grid from it. The smallest cell holds ≥ 20% of the
    // idle budget, so a 10% warm prefix never outlives a branch — cells
    // the fork guards reject anyway (e.g. 802.11's idle power outspending
    // the prefix) transparently run cold, with identical results.
    let warm = SimDuration::from_secs_f64(horizon / 10.0);
    let mut series = Vec::new();
    let mut survived = 0usize;
    let mut forked = 0usize;
    let mut cells = 0usize;
    for (label, model, burst) in models {
        let mut s = Series::new(label);
        let bases: Vec<Scenario> = (0..q.runs() as u64)
            .map(|seed| {
                ScenarioBuilder::single_hop(model, senders(q), burst, seed + 1)
                    .duration(q.duration())
                    .build()
                    .expect("the lifetime grid is valid")
            })
            .collect();
        let outcomes = battery_sweeps(&bases, warm, &caps);
        for o in &outcomes {
            forked += o.forked_cells;
            cells += caps.len();
        }
        for (ci, &cap) in caps.iter().enumerate() {
            // Censor survivors at the horizon rather than dropping them:
            // "lived at least this long" still orders the models.
            let ttfd: Vec<f64> = outcomes
                .iter()
                .map(|o| {
                    let r = &o.stats[ci];
                    if r.time_to_first_death_s.is_none() {
                        survived += 1;
                    }
                    r.time_to_first_death_s.unwrap_or(horizon)
                })
                .collect();
            let (mean, ci95) = mean_ci95(&ttfd);
            s.push_with_ci(cap, mean, ci95);
        }
        series.push(s);
    }
    let mut notes = vec![
        "every node carries the same ideal battery; the sink is mains-powered".into(),
        format!(
            "{} runs per point, {} s horizon; y = time to first node death",
            q.runs(),
            horizon
        ),
        format!(
            "{forked}/{cells} cells forked from a {:.0} s shared warm prefix; the rest ran cold",
            warm.as_secs_f64()
        ),
    ];
    if survived > 0 {
        notes.push(format!(
            "{survived} run(s) ended with every node alive; censored at the horizon"
        ));
    }
    Output::Figure {
        xlabel: "battery_J".into(),
        ylabel: "Time to first death (s)".into(),
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_axis_scales_with_quality() {
        let test = capacities(Quality::Test);
        let quick = capacities(Quality::Quick);
        assert_eq!(test.len(), 2);
        assert_eq!(quick.len(), 4);
        // Fractions of the idle budget: everything dies inside the run.
        let idle_budget =
            bcp_radio::profile::micaz().p_idle.as_watts() * Quality::Test.duration().as_secs_f64();
        assert!(test.iter().all(|&c| c < idle_budget));
    }

    #[test]
    fn lifetime_ordering_matches_the_papers_energy_story() {
        let out = lifetime(&RunCtx::new(Quality::Test));
        let Output::Figure { series, .. } = &out else {
            panic!("lifetime renders a figure");
        };
        let get = |label: &str| {
            series
                .iter()
                .find(|s| s.label() == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        for (_, cap, _) in get("Sensor").points() {
            assert!(*cap >= 0.0);
        }
        // At the largest capacity: the always-on 802.11 network dies far
        // sooner than the sensor baseline; BCP lives in the same league
        // as the sensor network.
        let at_max = |label: &str| get(label).points().last().unwrap().1;
        let sensor = at_max("Sensor");
        let dot11 = at_max("802.11");
        let dual = at_max("DualRadio-100");
        assert!(
            dot11 * 5.0 < sensor,
            "always-on idling kills early: 802.11 {dot11} vs sensor {sensor}"
        );
        assert!(
            dual > dot11 * 5.0,
            "BCP lives several times longer than 802.11: {dual} vs {dot11}"
        );
    }
}
