//! The experiment registry: one entry per table/figure of the paper.

use crate::ablations;
use crate::output::Output;
use crate::suite::{energy_delay_series, energy_series, goodput_series, Hop, Quality};
use bcp_analysis::feasibility;
use std::path::PathBuf;

/// Everything an experiment run needs to know beyond its own axes: the
/// fidelity to run at and where (if anywhere) to persist artifacts.
///
/// The `repro` binary persists each experiment's rendered/JSON/CSV output
/// into `out_dir` centrally; the context is threaded through experiments
/// so they can drop additional raw artifacts of their own next to them.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    /// Sweep fidelity.
    pub quality: Quality,
    /// Artifact directory (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
}

impl RunCtx {
    /// A context at the given quality, without artifact persistence.
    pub fn new(quality: Quality) -> Self {
        RunCtx {
            quality,
            out_dir: None,
        }
    }

    /// Adds an artifact directory.
    pub fn with_out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = Some(dir.into());
        self
    }
}

/// One reproducible experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Stable identifier (`table1`, `fig1` … `fig12`).
    pub id: &'static str,
    /// What the paper's artifact shows.
    pub title: &'static str,
    /// Producer function.
    pub run: fn(&RunCtx) -> Output,
}

/// All experiments in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1 — Energy characteristics (mW, mJ)",
            run: table1,
        },
        Experiment {
            id: "fig1",
            title: "Figure 1 — Energy consumption vs data size (single-hop)",
            run: fig1,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2 — Break-even size s* as idling time increases",
            run: fig2,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3 — Break-even size s* as forward progress increases",
            run: fig3,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4 — Energy savings with burst size",
            run: fig4,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5 — SH: Goodput vs number of senders",
            run: fig5,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6 — SH: Normalized energy (J/Kbit) vs number of senders",
            run: fig6,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7 — SH: Normalized energy vs delay (0.2 Kbps)",
            run: fig7,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8 — MH: Goodput vs number of senders",
            run: fig8,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9 — MH: Normalized energy (J/Kbit) vs number of senders",
            run: fig9,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10 — MH: Normalized energy vs delay (0.2 Kbps)",
            run: fig10,
        },
        Experiment {
            id: "fig11",
            title: "Figure 11 — Prototype: Energy per packet vs threshold α·s*",
            run: fig11,
        },
        Experiment {
            id: "fig12",
            title: "Figure 12 — Prototype: Energy per packet vs delay per packet",
            run: fig12,
        },
        Experiment {
            id: "ablation-shortcuts",
            title: "Ablation — Section 3 route optimization (learned shortcuts)",
            run: ablations::shortcuts,
        },
        Experiment {
            id: "ablation-overhearing",
            title: "Ablation — sensor-model overhearing accounting ladder",
            run: ablations::overhearing,
        },
        Experiment {
            id: "ablation-loss",
            title: "Ablation — goodput robustness under channel loss",
            run: ablations::loss,
        },
        Experiment {
            id: "ablation-adaptive",
            title: "Ablation — static vs retransmission-adaptive thresholds",
            run: ablations::adaptive,
        },
        Experiment {
            id: "ablation-link-asymmetry",
            title: "Ablation — received-power links: reach/lifetime vs shadowing sigma per class",
            run: ablations::link_asymmetry,
        },
        Experiment {
            id: "lifetime",
            title: "Lifetime — time to first death vs battery capacity (finite energy)",
            run: crate::lifetime::lifetime,
        },
        Experiment {
            id: "broadcast_lifetime",
            title: "Broadcast lifetime — flooding on the low radio vs bulk on the high radio",
            run: crate::broadcast::broadcast_lifetime,
        },
        Experiment {
            id: "scale",
            title: "Scale — events/sec vs node count × shard count (multi-core single run)",
            run: crate::scale::scale,
        },
        Experiment {
            id: "idle_floor",
            title: "Idle floor — LPL duty cycle × send rate (the listen/sleep crossover)",
            run: crate::idle_floor::idle_floor,
        },
    ]
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

fn table1(_ctx: &RunCtx) -> Output {
    let rows = feasibility::table1_rows()
        .into_iter()
        .map(|(name, rate, ptx, prx, pidle, ew)| {
            vec![
                name,
                rate,
                format!("{ptx}"),
                format!("{prx}"),
                format!("{pidle}"),
                ew.map(|e| format!("{e}")).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    Output::Table {
        headers: ["Radio", "Rate", "Ptx", "Prx", "Pi", "Ewakeup"]
            .map(String::from)
            .to_vec(),
        rows,
        notes: vec!["values reproduced from the paper's Table 1".into()],
    }
}

fn fig1(_ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "KB".into(),
        ylabel: "Energy consumption (mJ)".into(),
        series: feasibility::fig1_energy_vs_size(),
        notes: vec!["sensor-only lines use Eq. (1); card-Micaz lines use Eq. (2)".into()],
    }
}

fn fig2(_ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "idle_s".into(),
        ylabel: "Break-even data size (KB)".into(),
        series: feasibility::fig2_breakeven_vs_idle(),
        notes: vec!["E_idle charged across both high-power radios".into()],
    }
}

fn fig3(_ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "fp_hops".into(),
        ylabel: "Break-even data size (KB)".into(),
        series: feasibility::fig3_breakeven_vs_fp(),
        notes: vec!["absent points = infeasible pairing at that forward progress".into()],
    }
}

fn fig4(_ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "packets".into(),
        ylabel: "Fraction of energy savings".into(),
        series: feasibility::fig4_savings_vs_burst(),
        notes: vec!["-Idle variants charge 100 ms of idle per awake period".into()],
    }
}

fn fig5(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "senders".into(),
        ylabel: "Goodput".into(),
        series: goodput_series(Hop::Single, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig6(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "senders".into(),
        ylabel: "Normalized energy (J/Kbit)".into(),
        series: energy_series(Hop::Single, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig7(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "delay_s".into(),
        ylabel: "Normalized energy (J/Kb)".into(),
        series: energy_delay_series(Hop::Single, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig8(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "senders".into(),
        ylabel: "Goodput".into(),
        series: goodput_series(Hop::Multi, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig9(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "senders".into(),
        ylabel: "Normalized energy (J/Kbit)".into(),
        series: energy_series(Hop::Multi, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig10(ctx: &RunCtx) -> Output {
    Output::Figure {
        xlabel: "delay_s".into(),
        ylabel: "Normalized energy (J/Kb)".into(),
        series: energy_delay_series(Hop::Multi, ctx.quality),
        notes: sim_notes(ctx.quality),
    }
}

fn fig11(ctx: &RunCtx) -> Output {
    let runs = testbed_runs(ctx.quality);
    Output::Figure {
        xlabel: "threshold_B".into(),
        ylabel: "Energy per packet (uJ)".into(),
        series: bcp_testbed::fig11_series(runs),
        notes: vec![format!("{runs} runs per point (paper: 5)")],
    }
}

fn fig12(ctx: &RunCtx) -> Output {
    let runs = testbed_runs(ctx.quality);
    Output::Figure {
        xlabel: "delay_ms".into(),
        ylabel: "Energy per packet (uJ)".into(),
        series: vec![bcp_testbed::fig12_series(runs)],
        notes: vec![format!("{runs} runs per point (paper: 5)")],
    }
}

fn testbed_runs(q: Quality) -> usize {
    match q {
        Quality::Test => 1,
        Quality::Quick => 3,
        Quality::PaperLite | Quality::Paper => 5,
    }
}

fn sim_notes(q: Quality) -> Vec<String> {
    vec![format!(
        "{} runs of {} simulated seconds per point (paper: 20 runs of 5000 s)",
        q.runs(),
        q.duration()
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let paper: Vec<&str> = ids.iter().copied().take(13).collect();
        assert_eq!(
            paper,
            vec![
                "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                "fig10", "fig11", "fig12"
            ],
            "one entry per table/figure of the paper"
        );
        assert!(
            ids.iter().filter(|i| i.starts_with("ablation-")).count() >= 4,
            "ablations registered"
        );
        assert!(ids.contains(&"lifetime"), "lifetime experiment registered");
        assert!(
            ids.contains(&"idle_floor"),
            "idle_floor experiment registered"
        );
        assert!(
            ids.contains(&"broadcast_lifetime"),
            "broadcast_lifetime experiment registered"
        );
    }

    #[test]
    fn find_by_id() {
        assert!(find("fig6").is_some());
        assert!(find("fig13").is_none());
    }

    #[test]
    fn analytic_figures_render() {
        for id in ["table1", "fig1", "fig2", "fig3", "fig4"] {
            let e = find(id).unwrap();
            let out = (e.run)(&RunCtx::new(Quality::Test));
            let text = out.render(e.title);
            assert!(text.len() > 100, "{id} rendered too little");
        }
    }
}
