//! # bcp-experiments — regenerate every table and figure of the paper
//!
//! One [`registry::Experiment`] per artifact of the evaluation: Table 1,
//! the four analytic figures (1–4), the six simulation figures (5–10) and
//! the two prototype figures (11–12). The `repro` binary drives them:
//!
//! ```text
//! repro list                      # what can be reproduced
//! repro all --quick               # everything, minutes-scale
//! repro fig6 --paper              # one figure at the paper's full scale
//! repro all --json --out results/ # persist .txt/.json/.csv artifacts
//! repro run examples/specs/single_hop.scn   # any .scn file → RunStats JSON
//! ```
//!
//! Simulation sweeps run on all cores; figure pairs that share sweeps
//! (5+6, 8+9) compute them once.
//!
//! # Examples
//!
//! ```
//! use bcp_experiments::registry::{self, RunCtx};
//! use bcp_experiments::suite::Quality;
//!
//! let table1 = registry::find("table1").expect("registered");
//! let output = (table1.run)(&RunCtx::new(Quality::Test));
//! assert!(output.render(table1.title).contains("Cabletron"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod bench;
pub mod broadcast;
pub mod fork;
pub mod idle_floor;
pub mod lifetime;
pub mod output;
pub mod registry;
pub mod scale;
pub mod suite;

pub use output::Output;
pub use registry::{all, find, Experiment, RunCtx};
pub use suite::{Quality, SweepJob, SweepSpec};
