//! The `repro bench` harness: a canonical node-count × shard-count grid
//! timed end to end, emitted as a small JSON document suitable for
//! checking in (`BENCH_<rev>.json` at the repo root) and diffing across
//! revisions.
//!
//! The grid reuses the `scale` experiment's sensor-network builder so the
//! benched workload is the same physics the paper's figures exercise.
//! Throughput figures are wall-clock measurements — they are *not*
//! covered by any bit-identity guarantee and will differ run to run; the
//! point of checking a snapshot in is catching order-of-magnitude
//! regressions, not basis points.

use crate::scale::sensor_scale;
use bcp_sim::time::SimDuration;

/// One benched grid cell: a node count run at a shard count.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Total nodes in the grid topology.
    pub nodes: usize,
    /// Shard count the run was partitioned into.
    pub shards: usize,
    /// Logical events processed (shard-count invariant for a given cell).
    pub events: u64,
    /// Wall-clock seconds inside the engine.
    pub wall_s: f64,
    /// `events / wall_s` — the headline throughput figure.
    pub events_per_sec: f64,
}

/// Runs the canonical bench grid. `quick` trims it to a smoke-sized
/// corner (one side, two shard counts, a shorter horizon) for CI.
pub fn bench_grid(quick: bool) -> Vec<BenchCell> {
    let (sides, shard_counts, secs): (&[usize], &[usize], u64) = if quick {
        (&[16], &[1, 2], 5)
    } else {
        (&[16, 24, 32], &[1, 2, 4], 10)
    };
    let mut cells = Vec::new();
    for &side in sides {
        for &shards in shard_counts {
            let mut scen = sensor_scale(side, 2008);
            scen.duration = SimDuration::from_secs(secs);
            scen.shards = shards;
            let stats = scen.run();
            let e = &stats.engine;
            cells.push(BenchCell {
                nodes: side * side,
                shards,
                events: stats.events,
                wall_s: e.wall_s,
                events_per_sec: e.events_per_sec,
            });
        }
    }
    cells
}

/// Renders the bench document: `{"rev":...,"cells":[...]}`.
pub fn bench_json(rev: &str, cells: &[BenchCell]) -> String {
    use bcp_sim::json::{escape, num};
    let body = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"nodes\":{},\"shards\":{},\"events\":{},\"wall_s\":{},\"events_per_sec\":{}}}",
                c.nodes,
                c.shards,
                c.events,
                num(c.wall_s),
                num(c.events_per_sec)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"rev\":{},\"cells\":[{}]}}\n", escape(rev), body)
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_renders() {
        let cells = bench_grid(true);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.nodes, 256);
            assert!(c.events > 0, "a bench run processes events");
        }
        // Shard count never changes the logical event count.
        assert_eq!(cells[0].events, cells[1].events);
        let json = bench_json("deadbeef", &cells);
        let v = bcp_sim::json::parse(&json).expect("bench JSON parses");
        assert_eq!(v.get("rev").and_then(|r| r.as_str()), Some("deadbeef"));
        let arr = v
            .get("cells")
            .and_then(|c| c.as_arr())
            .expect("cells array");
        assert_eq!(arr.len(), 2);
    }
}
