//! The `repro bench` harness: a canonical node-count × shard-count grid
//! timed end to end, emitted as a small JSON document suitable for
//! checking in (`BENCH_<rev>.json` at the repo root) and diffing across
//! revisions with `repro bench --compare`.
//!
//! The grid reuses the `scale` experiment's sensor-network builder so the
//! benched workload is the same physics the paper's figures exercise, and
//! both sweeps draw their node×shard tables from [`grid`] so the two
//! cannot drift. Throughput figures are wall-clock measurements — they
//! are *not* covered by any bit-identity guarantee and will differ run to
//! run; the point of checking a snapshot in is catching order-of-magnitude
//! regressions, not basis points. The engine counters (`windows`,
//! `barriers`, `mean_window_s`) ride along so a lookahead win is visible
//! in the document itself, not inferred from throughput.

use crate::scale::sensor_scale;
use crate::suite::Quality;
use bcp_sim::time::SimDuration;
use bcp_simnet::Scenario;

/// Which node×shard sweep to run. The bench tiers and the `scale`
/// experiment's quality tiers all resolve through [`grid`], the single
/// source of truth for sweep shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridTier {
    /// CI smoke corner (`repro bench --quick`): one side, two shard
    /// counts, a short horizon.
    Smoke,
    /// The full `repro bench` matrix — the checked-in BENCH trajectory.
    Bench,
    /// The `scale` experiment at test quality.
    ScaleTest,
    /// The `scale` experiment at quick quality.
    ScaleQuick,
    /// The `scale` experiment at paper quality.
    ScalePaper,
}

impl GridTier {
    /// The tier backing the `scale` experiment at `q`.
    pub fn for_scale(q: Quality) -> GridTier {
        match q {
            Quality::Test => GridTier::ScaleTest,
            Quality::Quick => GridTier::ScaleQuick,
            Quality::PaperLite | Quality::Paper => GridTier::ScalePaper,
        }
    }
}

/// One node×shard sweep: grid sides (nodes = side²), shard counts, and
/// the simulated horizon per cell.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Grid sides swept (nodes = side²).
    pub sides: &'static [usize],
    /// Shard counts swept (1 is the sequential baseline).
    pub shard_counts: &'static [usize],
    /// Simulated seconds per cell.
    pub duration_s: u64,
}

/// The canonical node×shard sweep for `tier` — the one table `repro
/// bench` and the `scale` experiment both read.
pub fn grid(tier: GridTier) -> Grid {
    let (sides, shard_counts, duration_s): (&[usize], &[usize], u64) = match tier {
        GridTier::Smoke => (&[16], &[1, 2], 5),
        GridTier::Bench => (&[16, 24, 32], &[1, 2, 4], 10),
        GridTier::ScaleTest => (&[16], &[1, 2, 4], 5),
        GridTier::ScaleQuick => (&[24, 32], &[1, 2, 4, 8], 20),
        GridTier::ScalePaper => (&[32, 45], &[1, 2, 4, 8], 60),
    };
    Grid {
        sides,
        shard_counts,
        duration_s,
    }
}

impl Grid {
    /// The scenario for one cell: the `scale` experiment's sensor-model
    /// convergecast at this sweep's horizon.
    pub fn scenario(&self, side: usize, shards: usize, seed: u64) -> Scenario {
        sensor_scale(side, seed)
            .with_duration(SimDuration::from_secs(self.duration_s))
            .with_shards(shards)
    }
}

/// One benched grid cell: a node count run at a shard count.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Total nodes in the grid topology.
    pub nodes: usize,
    /// Shard count the run was partitioned into.
    pub shards: usize,
    /// Logical events processed (shard-count invariant for a given cell).
    pub events: u64,
    /// Wall-clock seconds inside the engine.
    pub wall_s: f64,
    /// `events / wall_s` — the headline throughput figure.
    pub events_per_sec: f64,
    /// Conservative windows drained.
    pub windows: u64,
    /// Synchronization points paid (`barriers - windows` = round count;
    /// batching keeps rounds far below windows).
    pub barriers: u64,
    /// Mean conservative window width in simulated seconds.
    pub mean_window_s: f64,
}

/// Repetitions per cell: the reported number is the best (fastest) of
/// these. Wall-clock on a shared box is one-sided noise — interference
/// only ever slows a run down — so the minimum wall time is the least
/// biased estimate of what the engine actually costs.
pub const BENCH_REPS: u32 = 3;

/// Runs the canonical bench grid, best-of-[`BENCH_REPS`] per cell.
/// `quick` trims it to the smoke-sized corner ([`GridTier::Smoke`]) for
/// CI.
pub fn bench_grid(quick: bool) -> Vec<BenchCell> {
    let g = grid(if quick {
        GridTier::Smoke
    } else {
        GridTier::Bench
    });
    let mut cells = Vec::new();
    for &side in g.sides {
        for &shards in g.shard_counts {
            let mut best: Option<BenchCell> = None;
            for _ in 0..BENCH_REPS {
                let stats = g.scenario(side, shards, 2008).run();
                let e = &stats.engine;
                let cell = BenchCell {
                    nodes: side * side,
                    shards,
                    events: stats.events,
                    wall_s: e.wall_s,
                    events_per_sec: e.events_per_sec,
                    windows: e.windows,
                    barriers: e.barriers,
                    mean_window_s: e.mean_window_s,
                };
                match &best {
                    // Same scenario, same engine: everything but wall
                    // clock is deterministic across reps.
                    Some(b) => {
                        assert_eq!(b.events, cell.events, "bench rep diverged");
                        assert_eq!(b.windows, cell.windows, "bench rep diverged");
                        if cell.wall_s < b.wall_s {
                            best = Some(cell);
                        }
                    }
                    None => best = Some(cell),
                }
            }
            cells.push(best.expect("BENCH_REPS >= 1"));
        }
    }
    cells
}

/// Wall-clock of the same battery-capacity sweep run cold (every cell
/// from `t = 0`) versus forked from a shared warm prefix
/// ([`crate::fork::battery_sweep`]). Rides along in the bench document
/// so prefix-sharing wins (and regressions) are visible revision to
/// revision. Like every figure here, seconds are measurements, not
/// guarantees.
#[derive(Debug, Clone)]
pub struct ForkBench {
    /// Capacity cells in the sweep.
    pub cells: usize,
    /// Cells that branched from the shared prefix (the rest ran cold).
    pub forked_cells: usize,
    /// Wall-clock seconds for the all-cold sweep.
    pub cold_s: f64,
    /// Wall-clock seconds for the forked sweep (prefix included).
    pub forked_s: f64,
}

/// Times the forked-vs-cold battery sweep on a lifetime-shaped scenario.
/// `quick` halves the horizon for CI.
pub fn bench_fork_sweep(quick: bool) -> ForkBench {
    use bcp_power::{Battery, PowerConfig};
    use bcp_simnet::ModelKind;
    let horizon = if quick { 30 } else { 60 };
    let base = bcp_simnet::Scenario::single_hop(ModelKind::Sensor, 10, 10, 2008)
        .with_duration(SimDuration::from_secs(horizon));
    let idle_w = bcp_radio::profile::micaz().p_idle.as_watts();
    let caps: Vec<f64> = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|f| f * idle_w * horizon as f64)
        .collect();
    let started = std::time::Instant::now();
    for &cap in &caps {
        let mut cold = base.clone();
        cold.power = PowerConfig::with_battery(Battery::ideal_joules(cap));
        cold.run();
    }
    let cold_s = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let warm = SimDuration::from_secs_f64(horizon as f64 / 10.0);
    let out = crate::fork::battery_sweep(&base, warm, &caps);
    let forked_s = started.elapsed().as_secs_f64();
    ForkBench {
        cells: caps.len(),
        forked_cells: out.forked_cells,
        cold_s,
        forked_s,
    }
}

/// Renders the bench document:
/// `{"rev":...,"cells":[...],"fork_sweep":{...}}`.
pub fn bench_json(rev: &str, cells: &[BenchCell], fork: Option<&ForkBench>) -> String {
    use bcp_sim::json::{escape, num};
    let body = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"nodes\":{},\"shards\":{},\"events\":{},\"wall_s\":{},\
                 \"events_per_sec\":{},\"windows\":{},\"barriers\":{},\
                 \"mean_window_s\":{}}}",
                c.nodes,
                c.shards,
                c.events,
                num(c.wall_s),
                num(c.events_per_sec),
                c.windows,
                c.barriers,
                num(c.mean_window_s),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let fork = match fork {
        Some(f) => format!(
            ",\"fork_sweep\":{{\"cells\":{},\"forked_cells\":{},\"cold_s\":{},\"forked_s\":{}}}",
            f.cells,
            f.forked_cells,
            num(f.cold_s),
            num(f.forked_s)
        ),
        None => String::new(),
    };
    format!("{{\"rev\":{},\"cells\":[{}]{}}}\n", escape(rev), body, fork)
}

/// Parses a bench document back into `(rev, cells, fork_sweep)`.
/// Documents from before the engine counters were recorded load with
/// those fields zero; documents without a fork sweep load with `None`.
pub fn parse_bench(text: &str) -> Result<(String, Vec<BenchCell>, Option<ForkBench>), String> {
    let v = bcp_sim::json::parse(text).map_err(|e| format!("bad bench JSON: {e}"))?;
    let rev = v
        .get("rev")
        .and_then(|r| r.as_str())
        .ok_or("bench document lacks a rev")?
        .to_string();
    let arr = v
        .get("cells")
        .and_then(|c| c.as_arr())
        .ok_or("bench document lacks a cells array")?;
    let mut cells = Vec::new();
    for c in arr {
        let int = |k: &str| c.get(k).and_then(|x| x.as_u64());
        let flt = |k: &str| c.get(k).and_then(|x| x.as_f64());
        cells.push(BenchCell {
            nodes: int("nodes").ok_or("cell lacks nodes")? as usize,
            shards: int("shards").ok_or("cell lacks shards")? as usize,
            events: int("events").ok_or("cell lacks events")?,
            wall_s: flt("wall_s").ok_or("cell lacks wall_s")?,
            events_per_sec: flt("events_per_sec").ok_or("cell lacks events_per_sec")?,
            windows: int("windows").unwrap_or(0),
            barriers: int("barriers").unwrap_or(0),
            mean_window_s: flt("mean_window_s").unwrap_or(0.0),
        });
    }
    let fork = v.get("fork_sweep").map(|f| {
        let int = |k: &str| f.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        let flt = |k: &str| f.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        ForkBench {
            cells: int("cells") as usize,
            forked_cells: int("forked_cells") as usize,
            cold_s: flt("cold_s"),
            forked_s: flt("forked_s"),
        }
    });
    Ok((rev, cells, fork))
}

/// One side of the forked-vs-cold line: `4/4 forked, cold 1.23s ->
/// forked 0.45s (2.7x)`, or `-` for documents without the figure.
fn fork_side(f: Option<&ForkBench>) -> String {
    match f {
        Some(f) => {
            let speedup = if f.forked_s > 0.0 {
                f.cold_s / f.forked_s
            } else {
                0.0
            };
            format!(
                "{}/{} forked, cold {:.2}s -> forked {:.2}s ({speedup:.1}x)",
                f.forked_cells, f.cells, f.cold_s, f.forked_s
            )
        }
        None => "-".into(),
    }
}

/// The `--compare` forked-vs-cold sweep wall-clock line. Empty when
/// neither document carries the figure.
pub fn render_fork_line(old: Option<&ForkBench>, new: Option<&ForkBench>) -> String {
    if old.is_none() && new.is_none() {
        return String::new();
    }
    format!(
        "fork sweep  old: {}\n            new: {}\n",
        fork_side(old),
        fork_side(new)
    )
}

/// One cell's throughput delta between two bench documents.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// Cell identity.
    pub nodes: usize,
    /// Cell identity.
    pub shards: usize,
    /// Old events/sec (`None` when the cell is new in the new document).
    pub old_eps: Option<f64>,
    /// New events/sec (`None` when the cell vanished from the grid).
    pub new_eps: Option<f64>,
    /// Percent change, positive = faster. `None` unless both sides exist
    /// *and* the old side is a usable (finite, nonzero) baseline — a
    /// ratio against zero is meaningless, not infinite.
    pub delta_pct: Option<f64>,
    /// Absolute change in events/sec (`new - old`) whenever both sides
    /// exist — the figure a 0-baseline cell is judged on.
    pub delta_abs: Option<f64>,
    /// Slower than the old document by more than the tolerance. Only a
    /// cell present in *both* grids can regress; one-sided cells are
    /// grid drift, reported separately and never a failure.
    pub regressed: bool,
}

/// Compares two cell sets by `(nodes, shards)` identity. A cell counts as
/// regressed when its throughput dropped more than `tolerance_pct`
/// percent. Cells present in only one document — a baseline that
/// predates a grid change, or a grid that grew — are *grid drift*: they
/// carry no throughput verdict and never regress, because there is
/// nothing to compare them against (see [`grid_drift`]). A cell whose
/// old throughput is zero (or not finite) has no meaningful percentage;
/// it is compared on absolute events/sec and cannot regress — any
/// measured throughput is at least the zero baseline.
pub fn compare(old: &[BenchCell], new: &[BenchCell], tolerance_pct: f64) -> Vec<CellDelta> {
    let mut deltas = Vec::new();
    for o in old {
        let n = new
            .iter()
            .find(|c| c.nodes == o.nodes && c.shards == o.shards);
        let baseline_usable = o.events_per_sec.is_finite() && o.events_per_sec > 0.0;
        let (new_eps, delta_pct, delta_abs) = match n {
            Some(n) if baseline_usable => {
                let pct = (n.events_per_sec / o.events_per_sec - 1.0) * 100.0;
                (
                    Some(n.events_per_sec),
                    Some(pct),
                    Some(n.events_per_sec - o.events_per_sec),
                )
            }
            Some(n) => (
                Some(n.events_per_sec),
                None,
                Some(n.events_per_sec - o.events_per_sec),
            ),
            None => (None, None, None),
        };
        let regressed = match (n, delta_pct) {
            (None, _) => false, // vanished: grid drift, not a slowdown
            (Some(_), Some(p)) => p < -tolerance_pct,
            (Some(_), None) => false, // 0-baseline: nothing to drop below
        };
        deltas.push(CellDelta {
            nodes: o.nodes,
            shards: o.shards,
            old_eps: Some(o.events_per_sec),
            new_eps,
            delta_pct,
            delta_abs,
            regressed,
        });
    }
    for n in new {
        if !old
            .iter()
            .any(|c| c.nodes == n.nodes && c.shards == n.shards)
        {
            deltas.push(CellDelta {
                nodes: n.nodes,
                shards: n.shards,
                old_eps: None,
                new_eps: Some(n.events_per_sec),
                delta_pct: None,
                delta_abs: None,
                regressed: false, // a grown grid is not a regression
            });
        }
    }
    deltas.sort_by_key(|d| (d.nodes, d.shards));
    deltas
}

/// The one-sided cells of a comparison: `(vanished, new)` — cells whose
/// baseline predates a grid change, and cells the grid grew. Both are
/// reported, neither is a failure; the throughput gate only covers the
/// intersection.
pub fn grid_drift(deltas: &[CellDelta]) -> (Vec<&CellDelta>, Vec<&CellDelta>) {
    let vanished = deltas.iter().filter(|d| d.new_eps.is_none()).collect();
    let fresh = deltas.iter().filter(|d| d.old_eps.is_none()).collect();
    (vanished, fresh)
}

/// Renders the grid-drift summary line, or an empty string when the two
/// documents cover the same grid.
pub fn render_drift(deltas: &[CellDelta]) -> String {
    let (vanished, fresh) = grid_drift(deltas);
    if vanished.is_empty() && fresh.is_empty() {
        return String::new();
    }
    let list = |cells: &[&CellDelta]| {
        cells
            .iter()
            .map(|d| format!("{}x{}", d.nodes, d.shards))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::from("grid drift: ");
    let mut parts = Vec::new();
    if !vanished.is_empty() {
        parts.push(format!(
            "{} cell(s) only in the old grid ({})",
            vanished.len(),
            list(&vanished)
        ));
    }
    if !fresh.is_empty() {
        parts.push(format!(
            "{} cell(s) only in the new grid ({})",
            fresh.len(),
            list(&fresh)
        ));
    }
    out.push_str(&parts.join("; "));
    out.push_str(" — not gated, only intersecting cells are\n");
    out
}

/// Renders the delta table `compare` produced, one row per cell.
pub fn render_compare(deltas: &[CellDelta], tolerance_pct: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>7} {:>7} {:>14} {:>14} {:>12}  verdict (tolerance {tolerance_pct}%)\n",
        "nodes", "shards", "old ev/s", "new ev/s", "delta"
    ));
    let eps = |v: Option<f64>| match v {
        Some(x) => format!("{x:.0}"),
        None => "-".into(),
    };
    for d in deltas {
        let delta = match (d.delta_pct, d.delta_abs) {
            (Some(p), _) => format!("{p:+.1}%"),
            (None, Some(a)) => format!("{a:+.0} ev/s"),
            (None, None) => "-".into(),
        };
        let verdict = if d.new_eps.is_none() {
            "drift (vanished)"
        } else if d.regressed {
            "REGRESSED"
        } else if d.old_eps.is_none() {
            "drift (new cell)"
        } else if d.delta_pct.is_none() {
            "0-baseline"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{:>7} {:>7} {:>14} {:>14} {:>12}  {}\n",
            d.nodes,
            d.shards,
            eps(d.old_eps),
            eps(d.new_eps),
            delta,
            verdict
        ));
    }
    out
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_renders() {
        let cells = bench_grid(true);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.nodes, 256);
            assert!(c.events > 0, "a bench run processes events");
            assert!(c.windows > 0, "windows surface in the bench document");
            assert!(c.barriers >= c.windows, "every window pays its barrier");
        }
        // Shard count never changes the logical event count.
        assert_eq!(cells[0].events, cells[1].events);
        let json = bench_json("deadbeef", &cells, None);
        let v = bcp_sim::json::parse(&json).expect("bench JSON parses");
        assert_eq!(v.get("rev").and_then(|r| r.as_str()), Some("deadbeef"));
        let arr = v
            .get("cells")
            .and_then(|c| c.as_arr())
            .expect("cells array");
        assert_eq!(arr.len(), 2);
        // And the document round-trips through the parser.
        let (rev, parsed, fork) = parse_bench(&json).expect("bench JSON parses back");
        assert_eq!(rev, "deadbeef");
        assert_eq!(parsed.len(), cells.len());
        assert_eq!(parsed[0].windows, cells[0].windows);
        assert!(fork.is_none(), "no fork sweep was recorded");
    }

    #[test]
    fn fork_sweep_round_trips_and_renders() {
        let f = ForkBench {
            cells: 4,
            forked_cells: 4,
            cold_s: 1.2,
            forked_s: 0.4,
        };
        let json = bench_json("deadbeef", &[cell(256, 1, 1000.0)], Some(&f));
        let (_, _, parsed) = parse_bench(&json).expect("parses back");
        let parsed = parsed.expect("fork sweep survives the round trip");
        assert_eq!(
            (parsed.cells, parsed.forked_cells),
            (f.cells, f.forked_cells)
        );
        assert!((parsed.cold_s - f.cold_s).abs() < 1e-12);
        let line = render_fork_line(None, Some(&parsed));
        assert!(line.contains("4/4 forked"), "line renders the new side");
        assert!(line.contains("old: -"), "absent side renders as a dash");
        assert_eq!(render_fork_line(None, None), "", "no figure, no line");
    }

    #[test]
    fn scale_tiers_resolve_through_the_shared_grid() {
        let t = grid(GridTier::for_scale(Quality::Test));
        assert_eq!((t.sides, t.duration_s), (&[16usize][..], 5));
        assert_eq!(t.shard_counts, &[1, 2, 4]);
        let p = grid(GridTier::for_scale(Quality::Paper));
        assert!(p.sides.contains(&45), "paper tier reaches 2025 nodes");
        let s = t.scenario(16, 4, 1);
        assert_eq!(s.topo.len(), 256);
        assert_eq!(s.shards, 4);
        assert_eq!(s.duration, SimDuration::from_secs(5));
    }

    fn cell(nodes: usize, shards: usize, eps: f64) -> BenchCell {
        BenchCell {
            nodes,
            shards,
            events: 1000,
            wall_s: 1.0,
            events_per_sec: eps,
            windows: 10,
            barriers: 12,
            mean_window_s: 0.1,
        }
    }

    #[test]
    fn compare_flags_only_out_of_tolerance_regressions() {
        let old = vec![cell(256, 1, 1000.0), cell(256, 2, 1000.0)];
        let new = vec![
            cell(256, 1, 950.0),  // -5%: inside a 10% tolerance
            cell(256, 2, 800.0),  // -20%: regression
            cell(1024, 4, 500.0), // new cell: never a regression
        ];
        let deltas = compare(&old, &new, 10.0);
        assert_eq!(deltas.len(), 3);
        assert!(!deltas[0].regressed);
        assert!(deltas[1].regressed);
        assert!(!deltas[2].regressed && deltas[2].old_eps.is_none());
        let table = render_compare(&deltas, 10.0);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("new cell"));
    }

    #[test]
    fn compare_treats_a_vanished_cell_as_drift_not_regression() {
        // A baseline file that predates a grid change must not fail the
        // comparison: only intersecting cells are gated.
        let old = vec![cell(256, 1, 1000.0), cell(512, 2, 1000.0)];
        let new = vec![cell(256, 1, 990.0)];
        let deltas = compare(&old, &new, 10.0);
        assert_eq!(deltas.len(), 2);
        assert!(
            deltas.iter().all(|d| !d.regressed),
            "a vanished cell is grid drift, never a regression"
        );
        let table = render_compare(&deltas, 10.0);
        assert!(
            table.contains("drift (vanished)"),
            "a vanished cell is named as drift, not lumped with slowdowns: {table}"
        );
        let (vanished, fresh) = grid_drift(&deltas);
        assert_eq!(vanished.len(), 1);
        assert_eq!((vanished[0].nodes, vanished[0].shards), (512, 2));
        assert!(fresh.is_empty());
        let drift = render_drift(&deltas);
        assert!(drift.contains("512x2"), "drift names the cell: {drift}");
        // Same grid on both sides: no drift line at all.
        assert_eq!(render_drift(&compare(&new, &new, 10.0)), "");
        // Drift and a real regression coexist: the regression still fails.
        let slow = vec![cell(256, 1, 500.0)];
        let deltas = compare(&old, &slow, 10.0);
        assert!(deltas.iter().any(|d| d.regressed), "intersection is gated");
    }

    #[test]
    fn compare_survives_a_zero_throughput_baseline() {
        let old = vec![cell(256, 1, 0.0)];
        let new = vec![cell(256, 1, 500.0)];
        let deltas = compare(&old, &new, 10.0);
        assert_eq!(deltas.len(), 1);
        let d = &deltas[0];
        assert!(
            d.delta_pct.is_none(),
            "no percentage against a zero baseline"
        );
        assert_eq!(d.delta_abs, Some(500.0), "judged on absolute ev/s instead");
        assert!(!d.regressed, "nothing can drop below a zero baseline");
        let table = render_compare(&deltas, 10.0);
        assert!(
            !table.contains("NaN") && !table.contains("inf"),
            "no NaN/inf leaks into the table: {table}"
        );
        assert!(table.contains("0-baseline"), "verdict names the case");
        assert!(table.contains("+500 ev/s"), "delta renders absolutely");
        // A non-finite baseline (a hand-edited or corrupt document) takes
        // the same absolute path rather than poisoning the verdict.
        let old = vec![cell(256, 1, f64::NAN)];
        let deltas = compare(&old, &new, 10.0);
        assert!(deltas[0].delta_pct.is_none() && !deltas[0].regressed);
    }

    #[test]
    fn compare_reports_one_sided_cells_symmetrically() {
        let both = vec![cell(256, 1, 1000.0)];
        let extra = vec![cell(256, 1, 1000.0), cell(1024, 4, 500.0)];
        // Cell only in `new`: informational, never a regression.
        let grown = compare(&both, &extra, 10.0);
        let new_only = grown.iter().find(|d| d.nodes == 1024).expect("new cell");
        assert!(!new_only.regressed && new_only.old_eps.is_none());
        assert!(render_compare(&grown, 10.0).contains("drift (new cell)"));
        // The same cell only in `old`: drift too — reported, not gated.
        let shrunk = compare(&extra, &both, 10.0);
        let old_only = shrunk.iter().find(|d| d.nodes == 1024).expect("old cell");
        assert!(!old_only.regressed && old_only.new_eps.is_none());
        let table = render_compare(&shrunk, 10.0);
        assert!(table.contains("drift (vanished)") && !table.contains("REGRESSED"));
        // Both directions surface through the drift summary.
        assert!(render_drift(&grown).contains("only in the new grid"));
        assert!(render_drift(&shrunk).contains("only in the old grid"));
    }
}
