//! Rendering figures and tables as aligned text (gnuplot-ready columns)
//! plus machine-readable JSON and CSV sinks (hand-rolled, dependency-free).

use bcp_sim::json::{escape, num};
use bcp_sim::stats::Series;

/// The product of one experiment: either a line figure or a table.
#[derive(Debug, Clone)]
pub enum Output {
    /// An x/y figure with one or more labelled series.
    Figure {
        /// Meaning of the x column.
        xlabel: String,
        /// Meaning of the y values.
        ylabel: String,
        /// The plotted lines.
        series: Vec<Series>,
        /// Free-form remarks (assumptions, paper comparison hooks).
        notes: Vec<String>,
    },
    /// A plain table.
    Table {
        /// Column headers.
        headers: Vec<String>,
        /// Row-major cells.
        rows: Vec<Vec<String>>,
        /// Free-form remarks.
        notes: Vec<String>,
    },
}

impl Output {
    /// Renders the output as aligned text. Figures are emitted as one
    /// x-column per distinct x value with `y±ci` per series (missing points
    /// are blank), which both humans and gnuplot digest.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {title}\n"));
        match self {
            Output::Figure {
                xlabel,
                ylabel,
                series,
                notes,
            } => {
                out.push_str(&format!("# y: {ylabel}\n"));
                for n in notes {
                    out.push_str(&format!("# note: {n}\n"));
                }
                // Collect the union of x values, sorted.
                let mut xs: Vec<f64> = series
                    .iter()
                    .flat_map(|s| s.points().iter().map(|p| p.0))
                    .collect();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
                xs.dedup();
                let mut headers = vec![xlabel.clone()];
                headers.extend(series.iter().map(|s| s.label().to_string()));
                let mut rows = Vec::new();
                for &x in &xs {
                    let mut row = vec![trim_float(x)];
                    for s in series {
                        let cell = s
                            .points()
                            .iter()
                            .find(|p| p.0 == x)
                            .map(|(_, y, ci)| {
                                if *ci > 0.0 {
                                    format!("{}±{}", trim_sig(*y), trim_sig(*ci))
                                } else {
                                    trim_sig(*y)
                                }
                            })
                            .unwrap_or_default();
                        row.push(cell);
                    }
                    rows.push(row);
                }
                out.push_str(&aligned(&headers, &rows));
            }
            Output::Table {
                headers,
                rows,
                notes,
            } => {
                for n in notes {
                    out.push_str(&format!("# note: {n}\n"));
                }
                out.push_str(&aligned(headers, rows));
            }
        }
        out
    }

    /// Serialises the output as a JSON object. Figures become
    /// `{"type":"figure", xlabel, ylabel, notes, series:[{label,
    /// points:[{x,y,ci}]}]}`; tables become `{"type":"table", headers,
    /// rows, notes}`. Non-finite point values become `null`.
    pub fn to_json(&self, title: &str) -> String {
        let arr = |items: &[String]| {
            format!(
                "[{}]",
                items
                    .iter()
                    .map(|s| escape(s))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        match self {
            Output::Figure {
                xlabel,
                ylabel,
                series,
                notes,
            } => {
                let series_json = series
                    .iter()
                    .map(|s| {
                        let points = s
                            .points()
                            .iter()
                            .map(|(x, y, ci)| {
                                format!(
                                    "{{\"x\":{},\"y\":{},\"ci\":{}}}",
                                    num(*x),
                                    num(*y),
                                    num(*ci)
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(",");
                        format!(
                            "{{\"label\":{},\"points\":[{}]}}",
                            escape(s.label()),
                            points
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"type\":\"figure\",\"title\":{},\"xlabel\":{},\"ylabel\":{},\
                     \"notes\":{},\"series\":[{}]}}",
                    escape(title),
                    escape(xlabel),
                    escape(ylabel),
                    arr(notes),
                    series_json
                )
            }
            Output::Table {
                headers,
                rows,
                notes,
            } => {
                let rows_json = rows.iter().map(|r| arr(r)).collect::<Vec<_>>().join(",");
                format!(
                    "{{\"type\":\"table\",\"title\":{},\"headers\":{},\"rows\":[{}],\
                     \"notes\":{}}}",
                    escape(title),
                    arr(headers),
                    rows_json,
                    arr(notes)
                )
            }
        }
    }

    /// Serialises the output as CSV. Figures use the long form
    /// (`series,x,y,ci`, one row per point); tables emit their headers and
    /// rows. Cells are quoted per RFC 4180 when they need it.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        match self {
            Output::Figure { series, .. } => {
                out.push_str("series,x,y,ci\n");
                for s in series {
                    for (x, y, ci) in s.points() {
                        out.push_str(&format!(
                            "{},{},{},{}\n",
                            csv_cell(s.label()),
                            csv_num(*x),
                            csv_num(*y),
                            csv_num(*ci)
                        ));
                    }
                }
            }
            Output::Table { headers, rows, .. } => {
                let line = |cells: &[String]| {
                    cells
                        .iter()
                        .map(|c| csv_cell(c))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                out.push_str(&line(headers));
                out.push('\n');
                for row in rows {
                    out.push_str(&line(row));
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Quotes a CSV cell when it contains a delimiter, quote or newline.
fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV numbers: full round-trip precision, empty cell for non-finite.
fn csv_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        String::new()
    }
}

fn aligned(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats an x value: integers without decimals, otherwise 4 significant
/// digits.
fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else {
        trim_sig(x)
    }
}

/// Formats to 4 significant digits without trailing zeros.
fn trim_sig(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let s = format!("{:.4e}", x);
    // Parse back and display compactly.
    let v: f64 = s.parse().expect("own formatting parses");
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor() as i32;
    if (-3..6).contains(&mag) {
        let decimals = (4 - 1 - mag).max(0) as usize;
        let t = format!("{:.*}", decimals, v);
        // Only strip redundant zeros after a decimal point — trimming an
        // integer like "12420" would silently drop magnitude.
        let t = if t.contains('.') {
            t.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            t
        };
        if t.is_empty() || t == "-" {
            "0".into()
        } else {
            t
        }
    } else {
        format!("{:.3e}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_aligned_columns() {
        let mut a = Series::new("A");
        a.push(5.0, 0.5);
        a.push_with_ci(10.0, 0.25, 0.01);
        let mut b = Series::new("B");
        b.push(5.0, 1.0);
        let fig = Output::Figure {
            xlabel: "senders".into(),
            ylabel: "goodput".into(),
            series: vec![a, b],
            notes: vec!["demo".into()],
        };
        let r = fig.render("Figure X");
        assert!(r.contains("# Figure X"));
        assert!(r.contains("# note: demo"));
        assert!(r.contains("senders"));
        assert!(r.contains("0.25±0.01"));
        // Row for x=10 exists but B has no point there (blank cell).
        let row10: Vec<&str> = r
            .lines()
            .filter(|l| l.trim_start().starts_with("10"))
            .collect();
        assert_eq!(row10.len(), 1);
    }

    #[test]
    fn table_renders() {
        let t = Output::Table {
            headers: vec!["radio".into(), "rate".into()],
            rows: vec![
                vec!["Cabletron".into(), "2Mbps".into()],
                vec!["Micaz".into(), "250Kbps".into()],
            ],
            notes: vec![],
        };
        let r = t.render("Table 1");
        assert!(r.contains("Cabletron"));
        assert!(r.contains("250Kbps"));
    }

    #[test]
    fn figure_json_and_csv_sinks() {
        let mut a = Series::new("A,1");
        a.push_with_ci(5.0, 0.5, 0.01);
        a.push(10.0, f64::INFINITY);
        let fig = Output::Figure {
            xlabel: "senders".into(),
            ylabel: "goodput".into(),
            series: vec![a],
            notes: vec!["a \"quoted\" note".into()],
        };
        let j = fig.to_json("Fig X");
        assert!(j.starts_with("{\"type\":\"figure\""));
        assert!(j.contains("\"title\":\"Fig X\""));
        assert!(j.contains("\"label\":\"A,1\""));
        assert!(j.contains("{\"x\":5.0,\"y\":0.5,\"ci\":0.01}"));
        assert!(j.contains("\"y\":null"), "non-finite y → null: {j}");
        assert!(j.contains("a \\\"quoted\\\" note"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let c = fig.to_csv();
        assert!(c.starts_with("series,x,y,ci\n"));
        assert!(c.contains("\"A,1\",5.0,0.5,0.01\n"), "{c}");
        assert!(c.contains("\"A,1\",10.0,,"), "non-finite → empty cell: {c}");
    }

    #[test]
    fn table_json_and_csv_sinks() {
        let t = Output::Table {
            headers: vec!["radio".into(), "rate".into()],
            rows: vec![vec!["Cabletron".into(), "2Mbps".into()]],
            notes: vec![],
        };
        let j = t.to_json("Table 1");
        assert!(j.starts_with("{\"type\":\"table\""));
        assert!(j.contains("\"headers\":[\"radio\",\"rate\"]"));
        assert!(j.contains("\"rows\":[[\"Cabletron\",\"2Mbps\"]]"));
        let c = t.to_csv();
        assert_eq!(c, "radio,rate\nCabletron,2Mbps\n");
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_sig(0.50004), "0.5");
        assert_eq!(trim_sig(0.1234567), "0.1235");
        assert_eq!(trim_sig(1234.567), "1235");
        assert_eq!(trim_sig(0.0), "0");
        assert_eq!(trim_sig(f64::INFINITY), "inf");
        assert!(trim_sig(1.5e-7).contains('e'));
    }

    #[test]
    fn integers_keep_their_trailing_zeros() {
        // Regression: "12420" must not become "1242".
        assert_eq!(trim_sig(12420.4), "12420");
        assert_eq!(trim_sig(1600.2), "1600");
        assert_eq!(trim_sig(3070.7), "3071");
        assert_eq!(trim_float(1600.2), "1600");
        assert_eq!(trim_sig(100.0), "100");
        assert_eq!(trim_sig(0.1000), "0.1");
    }
}
