//! Coupling a battery to an energy meter.
//!
//! A node's radios meter their consumption in cumulative
//! [`EnergyLedger`](bcp_radio::energy::EnergyLedger) totals; a
//! [`PowerSupply`] turns those monotone totals into battery drain by
//! syncing: every call to [`PowerSupply::sync_to`] drains exactly the
//! energy metered since the previous sync. Because radio power draw is
//! piecewise constant between events, the projected depletion instant
//! ([`PowerSupply::time_to_depletion`]) is exact, which is what lets the
//! simulator schedule node death as a first-class event rather than
//! polling.

use crate::battery::{Battery, BatteryModel};
use bcp_radio::units::{Energy, Power};
use bcp_sim::time::SimDuration;

/// A battery plus the bookkeeping tying it to cumulative meter readings.
///
/// # Examples
///
/// ```
/// use bcp_power::battery::{Battery, BatteryModel};
/// use bcp_power::supply::PowerSupply;
/// use bcp_radio::units::{Energy, Power};
///
/// let mut s = PowerSupply::new(Battery::ideal_joules(1.0));
/// // The meter reads 0.4 J total: the battery drains 0.4 J.
/// s.sync_to(Energy::from_joules(0.4));
/// assert!((s.battery().remaining().as_joules() - 0.6).abs() < 1e-12);
/// // At a 0.1 W draw the supply lasts six more seconds.
/// let t = s.time_to_depletion(Power::from_watts(0.1)).unwrap();
/// assert!((t.as_secs_f64() - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSupply {
    battery: Battery,
    synced: Energy,
}

impl PowerSupply {
    /// Wraps a full battery; the meter is assumed to start at zero.
    pub fn new(battery: Battery) -> Self {
        PowerSupply {
            battery,
            synced: Energy::ZERO,
        }
    }

    /// The battery behind this supply.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Drains the battery by whatever the meter accumulated since the last
    /// sync (`metered_total` is cumulative and must not regress).
    ///
    /// # Panics
    ///
    /// Panics if `metered_total` is lower than a previously synced reading —
    /// energy meters only count up.
    pub fn sync_to(&mut self, metered_total: Energy) {
        assert!(
            metered_total >= self.synced,
            "energy meter regressed: {metered_total} < {}",
            self.synced
        );
        let delta = metered_total.saturating_sub(self.synced);
        self.battery.drain(delta);
        self.synced = metered_total;
    }

    /// The cumulative meter reading the battery was last synced to, for
    /// exact checkpointing alongside [`Battery::drawn`].
    ///
    /// [`Battery::drawn`]: crate::battery::BatteryModel::drawn
    pub fn synced(&self) -> Energy {
        self.synced
    }

    /// Overwrites the supply registers with captured values — the restore
    /// path of a checkpoint. Both are path-dependent floating-point sums,
    /// so they are set verbatim rather than replayed.
    pub fn restore_state(&mut self, drawn: Energy, synced: Energy) {
        self.battery.set_drawn(drawn);
        self.synced = synced;
    }

    /// `true` once the battery can supply nothing more *at the synced
    /// reading* — callers decide when to sync.
    pub fn is_depleted(&self) -> bool {
        self.battery.is_depleted()
    }

    /// Treats anything the present `draw` would consume within one
    /// nanosecond (the simulator's clock tick) as depletion, absorbing the
    /// rounding of projected death instants to the tick grid.
    pub fn is_depleted_at(&self, draw: Power) -> bool {
        self.battery.remaining().as_joules() <= draw.as_watts() * 1e-9 + f64::EPSILON
    }

    /// How long the remaining energy lasts at a constant `draw`; `None`
    /// when the draw is zero (the supply outlives any horizon).
    pub fn time_to_depletion(&self, draw: Power) -> Option<SimDuration> {
        let w = draw.as_watts();
        if w <= 0.0 {
            return None;
        }
        let secs = self.battery.remaining().as_joules() / w;
        // Round *up* to the next tick so the depletion event never fires
        // while a sliver of charge is still mathematically left.
        Some(SimDuration::from_nanos((secs * 1e9).ceil() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_drains_deltas_not_totals() {
        let mut s = PowerSupply::new(Battery::ideal_joules(10.0));
        s.sync_to(Energy::from_joules(3.0));
        s.sync_to(Energy::from_joules(3.0)); // no-op
        s.sync_to(Energy::from_joules(7.0));
        assert!((s.battery().drawn().as_joules() - 7.0).abs() < 1e-12);
        assert!(!s.is_depleted());
        s.sync_to(Energy::from_joules(12.0)); // clamped at capacity
        assert!(s.is_depleted());
        assert_eq!(s.battery().drawn(), s.battery().capacity());
    }

    #[test]
    #[should_panic(expected = "energy meter regressed")]
    fn regressing_meter_panics() {
        let mut s = PowerSupply::new(Battery::ideal_joules(1.0));
        s.sync_to(Energy::from_joules(0.5));
        s.sync_to(Energy::from_joules(0.4));
    }

    #[test]
    fn depletion_projection_rounds_up() {
        let s = PowerSupply::new(Battery::ideal_joules(1.0));
        let t = s.time_to_depletion(Power::from_watts(3.0)).unwrap();
        // 1/3 s rounds up to the next nanosecond.
        assert!(t.as_secs_f64() >= 1.0 / 3.0);
        assert!(t.as_secs_f64() - 1.0 / 3.0 < 1e-8);
        assert!(s.time_to_depletion(Power::ZERO).is_none());
    }

    #[test]
    fn tick_epsilon_depletion() {
        let mut s = PowerSupply::new(Battery::ideal_joules(1.0));
        let cap = Energy::from_joules(1.0);
        // Drain to within a fraction of a nanosecond-tick of the capacity.
        s.sync_to(cap.saturating_sub(Energy::from_joules(1e-12)));
        assert!(!s.is_depleted(), "strictly, charge remains");
        assert!(
            s.is_depleted_at(Power::from_watts(1.0)),
            "but a 1 W draw empties it within a tick"
        );
    }
}
