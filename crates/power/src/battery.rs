//! Battery models: how much energy a node can spend before it dies.
//!
//! Two concrete models ship behind the [`BatteryModel`] trait:
//!
//! * [`IdealBattery`] — a linear reservoir of joules, fully usable.
//! * [`CapacityBattery`] — a capacity-rated cell (mAh at a terminal
//!   voltage) whose voltage declines linearly with drawn charge and whose
//!   load cuts off at a minimum operating voltage, so only part of the
//!   rated charge is usable — the classic reason "2850 mAh" never means
//!   2850 mAh in the field.
//!
//! [`Battery`] wraps both in a clonable enum so scenarios stay plain data;
//! anything implementing [`BatteryModel`] plugs into the same accounting.

use bcp_radio::units::Energy;

/// A finite energy reservoir that radios drain.
pub trait BatteryModel {
    /// Total usable energy when full.
    fn capacity(&self) -> Energy;

    /// Energy drained so far (never exceeds [`capacity`](Self::capacity)).
    fn drawn(&self) -> Energy;

    /// Drains up to `e`, clamping at depletion; returns the energy actually
    /// supplied.
    fn drain(&mut self, e: Energy) -> Energy;

    /// Usable energy left.
    fn remaining(&self) -> Energy {
        self.capacity().saturating_sub(self.drawn())
    }

    /// `true` once the battery can supply nothing more.
    fn is_depleted(&self) -> bool {
        self.remaining() == Energy::ZERO
    }

    /// State of charge in `[0, 1]`.
    fn state_of_charge(&self) -> f64 {
        let cap = self.capacity().as_joules();
        if cap == 0.0 {
            0.0
        } else {
            self.remaining().as_joules() / cap
        }
    }
}

/// A linear reservoir: every joule of the rated capacity is usable.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealBattery {
    capacity: Energy,
    drawn: Energy,
}

impl IdealBattery {
    /// A full battery holding `capacity`.
    pub fn new(capacity: Energy) -> Self {
        IdealBattery {
            capacity,
            drawn: Energy::ZERO,
        }
    }
}

impl BatteryModel for IdealBattery {
    fn capacity(&self) -> Energy {
        self.capacity
    }

    fn drawn(&self) -> Energy {
        self.drawn
    }

    fn drain(&mut self, e: Energy) -> Energy {
        let supplied = if e < self.remaining() {
            e
        } else {
            self.remaining()
        };
        self.drawn += supplied;
        supplied
    }
}

/// A capacity-rated cell: `mAh` of charge, a terminal voltage that declines
/// linearly from `v_full` to `v_empty` as charge is drawn, and a load that
/// cuts off at `v_cutoff`.
///
/// Usable charge is the fraction drawn before the terminal voltage crosses
/// the cutoff; usable energy is the integral of `v(q) dq` over that span:
///
/// ```text
/// q_usable = q_rated · (v_full − v_cutoff) / (v_full − v_empty)
/// E_usable = q_usable · (v_full + v_cutoff) / 2
/// ```
///
/// # Examples
///
/// ```
/// use bcp_power::battery::{BatteryModel, CapacityBattery};
///
/// // A 2×AA alkaline pack: 2850 mAh, 3.0 V fresh, cutoff at 1.8 V.
/// let b = CapacityBattery::from_mah(2850.0, 3.0, 1.8, 1.6);
/// // Rated energy at the mean usable voltage, not mAh × v_full:
/// assert!(b.capacity().as_joules() < 2.850 * 3600.0 * 3.0);
/// assert!(b.capacity().as_joules() > 2.850 * 3600.0 * 1.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityBattery {
    mah: f64,
    q_rated_c: f64,
    v_full: f64,
    v_cutoff: f64,
    v_empty: f64,
    usable: Energy,
    drawn: Energy,
}

impl CapacityBattery {
    /// A full cell rated `mah` milliamp-hours, with fresh terminal voltage
    /// `v_full`, load cutoff `v_cutoff`, and fully-discharged voltage
    /// `v_empty` (the linear curve's endpoint).
    ///
    /// # Panics
    ///
    /// Panics unless `v_full > v_cutoff >= v_empty >= 0` and `mah > 0`.
    pub fn from_mah(mah: f64, v_full: f64, v_cutoff: f64, v_empty: f64) -> Self {
        assert!(mah > 0.0, "capacity must be positive: {mah} mAh");
        assert!(
            v_full > v_cutoff && v_cutoff >= v_empty && v_empty >= 0.0,
            "need v_full > v_cutoff >= v_empty >= 0, got {v_full}/{v_cutoff}/{v_empty}"
        );
        let q_rated_c = mah * 3.6; // mAh → coulombs
        let q_usable = q_rated_c * (v_full - v_cutoff) / (v_full - v_empty);
        let usable = Energy::from_joules(q_usable * (v_full + v_cutoff) / 2.0);
        CapacityBattery {
            mah,
            q_rated_c,
            v_full,
            v_cutoff,
            v_empty,
            usable,
            drawn: Energy::ZERO,
        }
    }

    /// The rated charge in milliamp-hours (the exact `mah` this cell was
    /// built from) — exposed so scenario files can round-trip the
    /// chemistry bit-for-bit.
    pub fn rated_mah(&self) -> f64 {
        self.mah
    }

    /// Fresh terminal voltage.
    pub fn v_full(&self) -> f64 {
        self.v_full
    }

    /// Load cutoff voltage.
    pub fn v_cutoff(&self) -> f64 {
        self.v_cutoff
    }

    /// Fully-discharged voltage (the linear curve's endpoint).
    pub fn v_empty(&self) -> f64 {
        self.v_empty
    }

    /// Present terminal voltage under the linear discharge curve.
    pub fn voltage(&self) -> f64 {
        // Invert E(q) = v_full·q − slope·q²/2 for the drawn charge q.
        let slope = (self.v_full - self.v_empty) / self.q_rated_c;
        let e = self.drawn.as_joules();
        let q = if slope == 0.0 {
            e / self.v_full
        } else {
            // Smaller root of slope/2·q² − v_full·q + e = 0.
            (self.v_full
                - (self.v_full * self.v_full - 2.0 * slope * e)
                    .max(0.0)
                    .sqrt())
                / slope
        };
        (self.v_full - slope * q).max(self.v_cutoff)
    }
}

impl BatteryModel for CapacityBattery {
    fn capacity(&self) -> Energy {
        self.usable
    }

    fn drawn(&self) -> Energy {
        self.drawn
    }

    fn drain(&mut self, e: Energy) -> Energy {
        let supplied = if e < self.remaining() {
            e
        } else {
            self.remaining()
        };
        self.drawn += supplied;
        supplied
    }
}

/// A clonable battery: scenario configuration stays plain data while both
/// models (and scaled variants for experiment sizing) share one type.
#[derive(Debug, Clone, PartialEq)]
pub enum Battery {
    /// A linear joule reservoir.
    Ideal(IdealBattery),
    /// A capacity-rated cell with a cutoff voltage.
    Capacity(CapacityBattery),
}

impl Battery {
    /// An ideal battery holding `capacity`.
    pub fn ideal(capacity: Energy) -> Self {
        Battery::Ideal(IdealBattery::new(capacity))
    }

    /// An ideal battery holding `j` joules.
    pub fn ideal_joules(j: f64) -> Self {
        Battery::ideal(Energy::from_joules(j))
    }

    /// A capacity-rated cell (see [`CapacityBattery::from_mah`]).
    pub fn from_mah(mah: f64, v_full: f64, v_cutoff: f64, v_empty: f64) -> Self {
        Battery::Capacity(CapacityBattery::from_mah(mah, v_full, v_cutoff, v_empty))
    }

    /// The classic mote supply: two AA alkaline cells in series
    /// (2850 mAh, 3.0 V fresh, 1.8 V cutoff, 1.6 V empty) — roughly 17 kJ
    /// usable.
    pub fn aa_pair() -> Self {
        Battery::from_mah(2850.0, 3.0, 1.8, 1.6)
    }

    /// The same chemistry at `k` times the capacity — experiment sizing
    /// (e.g. `aa_pair().scaled(1e-3)` deaths within a short simulation).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive and finite.
    pub fn scaled(self, k: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "invalid battery scale {k}");
        match self {
            Battery::Ideal(b) => Battery::ideal(b.capacity().scaled(k)),
            Battery::Capacity(b) => Battery::Capacity(CapacityBattery::from_mah(
                b.mah * k,
                b.v_full,
                b.v_cutoff,
                b.v_empty,
            )),
        }
    }
}

impl BatteryModel for Battery {
    fn capacity(&self) -> Energy {
        match self {
            Battery::Ideal(b) => b.capacity(),
            Battery::Capacity(b) => b.capacity(),
        }
    }

    fn drawn(&self) -> Energy {
        match self {
            Battery::Ideal(b) => b.drawn(),
            Battery::Capacity(b) => b.drawn(),
        }
    }

    fn drain(&mut self, e: Energy) -> Energy {
        match self {
            Battery::Ideal(b) => b.drain(e),
            Battery::Capacity(b) => b.drain(e),
        }
    }
}

impl Battery {
    /// Overwrites the drained tally — the restore path of a checkpoint.
    /// `drawn` accumulates one floating-point addition per drain, so an
    /// exact restore must set the captured sum verbatim instead of
    /// replaying the history (whose rounding it could never reproduce in
    /// one step).
    pub fn set_drawn(&mut self, drawn: Energy) {
        match self {
            Battery::Ideal(b) => b.drawn = drawn,
            Battery::Capacity(b) => b.drawn = drawn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_drains_linearly_and_clamps() {
        let mut b = IdealBattery::new(Energy::from_joules(10.0));
        assert_eq!(b.drain(Energy::from_joules(4.0)), Energy::from_joules(4.0));
        assert!((b.state_of_charge() - 0.6).abs() < 1e-12);
        assert!(!b.is_depleted());
        // Overdraw clamps at the remaining 6 J.
        assert_eq!(
            b.drain(Energy::from_joules(100.0)),
            Energy::from_joules(6.0)
        );
        assert!(b.is_depleted());
        assert_eq!(b.remaining(), Energy::ZERO);
        assert_eq!(b.drawn(), b.capacity());
    }

    #[test]
    fn capacity_battery_usable_energy_respects_cutoff() {
        // 1000 mAh, 3.0 V → 1.5 V linear, cutoff at 2.25 V: half the charge
        // is usable, at a mean voltage of (3.0 + 2.25)/2.
        let b = CapacityBattery::from_mah(1000.0, 3.0, 2.25, 1.5);
        let q_usable = 1000.0 * 3.6 * 0.5;
        let expect = q_usable * (3.0 + 2.25) / 2.0;
        assert!((b.capacity().as_joules() - expect).abs() < 1e-9);
    }

    #[test]
    fn capacity_battery_voltage_declines_to_cutoff() {
        let mut b = CapacityBattery::from_mah(1000.0, 3.0, 2.0, 1.5);
        assert!((b.voltage() - 3.0).abs() < 1e-9, "fresh cell at v_full");
        let cap = b.capacity();
        b.drain(cap.scaled(0.5));
        let mid = b.voltage();
        assert!(mid < 3.0 && mid > 2.0, "mid-discharge voltage: {mid}");
        b.drain(cap);
        assert!((b.voltage() - 2.0).abs() < 1e-6, "dead cell at cutoff");
        assert!(b.is_depleted());
    }

    #[test]
    fn aa_pair_in_expected_ballpark() {
        let b = Battery::aa_pair();
        let j = b.capacity().as_joules();
        // 2850 mAh × ~2.4 V mean usable ≈ 15–25 kJ.
        assert!((10_000.0..30_000.0).contains(&j), "2×AA ≈ {j} J");
    }

    #[test]
    fn scaling_preserves_chemistry() {
        let full = Battery::aa_pair();
        let tiny = full.clone().scaled(1e-3);
        let ratio = tiny.capacity().as_joules() / full.capacity().as_joules();
        assert!((ratio - 1e-3).abs() < 1e-12);
        let half = Battery::ideal_joules(10.0).scaled(0.5);
        assert_eq!(half.capacity(), Energy::from_joules(5.0));
    }

    #[test]
    #[should_panic(expected = "v_full > v_cutoff")]
    fn inverted_voltages_rejected() {
        let _ = CapacityBattery::from_mah(100.0, 1.5, 3.0, 1.0);
    }
}
