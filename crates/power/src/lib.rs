//! # bcp-power — finite batteries and node lifetime
//!
//! The paper accounts energy; this crate makes it *finite*. A node carries
//! a [`battery::Battery`] whose charge the radios' energy ledgers drain;
//! when it empties, the node dies and the network has to live with the
//! corpse. That single change turns every J/Kbit number of the
//! reproduction into the quantity the savings exist to serve: **network
//! lifetime**.
//!
//! * [`battery`] — the [`battery::BatteryModel`] trait with an ideal
//!   linear reservoir and a capacity-rated (mAh @ V, cutoff-voltage) cell.
//! * [`supply`] — [`supply::PowerSupply`], syncing a battery against a
//!   node's cumulative energy-meter readings and projecting the exact
//!   depletion instant for event scheduling.
//! * [`config`] — [`config::PowerConfig`], the scenario knob (default:
//!   the paper's unlimited-energy setting).
//!
//! # Examples
//!
//! ```
//! use bcp_power::{Battery, BatteryModel, PowerSupply};
//! use bcp_radio::units::{Energy, Power};
//!
//! // Two AA cells scaled down to experiment size:
//! let mut supply = PowerSupply::new(Battery::aa_pair().scaled(1e-3));
//! supply.sync_to(Energy::from_joules(10.0));
//! assert!(!supply.is_depleted());
//! // A MicaZ idling at ~30 mW lasts minutes, not days, on a milli-AA.
//! let left = supply.time_to_depletion(Power::from_milliwatts(30.0)).unwrap();
//! assert!(left.as_secs_f64() < 600.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod battery;
pub mod config;
pub mod supply;

pub use battery::{Battery, BatteryModel, CapacityBattery, IdealBattery};
pub use config::PowerConfig;
pub use supply::PowerSupply;
