//! Scenario-level power parameterisation.

use crate::battery::Battery;
use bcp_sim::time::SimDuration;

/// How a scenario provisions node energy.
///
/// The default (`battery: None`) reproduces the paper's evaluation exactly:
/// nodes meter energy but never run out. Setting a battery turns every run
/// into a network-lifetime experiment — nodes die when depleted, the
/// simulator reroutes around the corpses, and
/// `RunStats` gains `time_to_first_death_s` and friends.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// The battery every node starts with; `None` means unlimited energy
    /// (the paper's setting).
    pub battery: Option<Battery>,
    /// When `true` (default), the sink is mains-powered and never dies —
    /// the usual deployment assumption for lifetime studies.
    pub sink_unlimited: bool,
    /// Rebuild routes on this period even without a death — lets the
    /// energy-aware route weight react to draining relays, not only to
    /// corpses. `None` reroutes at deaths only.
    pub reroute_every: Option<SimDuration>,
    /// Per-node battery overrides by node index (heterogeneous
    /// provisioning: a starved relay, a solar-backed cluster head, …). An
    /// override beats both the default battery and `sink_unlimited`.
    pub overrides: Vec<(usize, Battery)>,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            battery: None,
            sink_unlimited: true,
            reroute_every: None,
            overrides: Vec::new(),
        }
    }
}

impl PowerConfig {
    /// Unlimited energy (the paper's setting).
    pub fn unlimited() -> Self {
        PowerConfig::default()
    }

    /// Every non-sink node starts with a copy of `battery`.
    pub fn with_battery(battery: Battery) -> Self {
        PowerConfig {
            battery: Some(battery),
            ..PowerConfig::default()
        }
    }

    /// Also gives the sink a battery (no mains power anywhere).
    pub fn battery_powered_sink(mut self) -> Self {
        self.sink_unlimited = false;
        self
    }

    /// Sets the periodic reroute interval.
    pub fn with_reroute_every(mut self, every: SimDuration) -> Self {
        self.reroute_every = Some(every);
        self
    }

    /// Gives the node at `node_index` its own battery, overriding the
    /// default (and `sink_unlimited`, should it be the sink).
    pub fn with_node_battery(mut self, node_index: usize, battery: Battery) -> Self {
        self.overrides.retain(|(i, _)| *i != node_index);
        self.overrides.push((node_index, battery));
        self
    }

    /// The battery the node at `node_index` starts with (`None` = mains).
    pub fn battery_for(&self, node_index: usize, is_sink: bool) -> Option<Battery> {
        if let Some((_, b)) = self.overrides.iter().find(|(i, _)| *i == node_index) {
            return Some(b.clone());
        }
        if is_sink && self.sink_unlimited {
            return None;
        }
        self.battery.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_unlimited_setting() {
        let c = PowerConfig::default();
        assert!(c.battery.is_none());
        assert!(c.sink_unlimited);
        assert!(c.reroute_every.is_none());
        assert_eq!(c, PowerConfig::unlimited());
    }

    #[test]
    fn builders_compose() {
        let c = PowerConfig::with_battery(Battery::ideal_joules(5.0))
            .battery_powered_sink()
            .with_reroute_every(SimDuration::from_secs(30));
        assert!(c.battery.is_some());
        assert!(!c.sink_unlimited);
        assert_eq!(c.reroute_every, Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn battery_for_resolves_overrides_sink_and_default() {
        use crate::battery::BatteryModel;
        let c = PowerConfig::with_battery(Battery::ideal_joules(5.0))
            .with_node_battery(3, Battery::ideal_joules(1.0))
            .with_node_battery(3, Battery::ideal_joules(2.0)); // replaces
                                                               // Default for ordinary nodes, mains for the sink, override wins.
        assert_eq!(c.battery_for(0, false).unwrap().capacity().as_joules(), 5.0);
        assert!(c.battery_for(7, true).is_none());
        assert_eq!(c.battery_for(3, false).unwrap().capacity().as_joules(), 2.0);
        // An override even beats sink mains power.
        assert_eq!(c.battery_for(3, true).unwrap().capacity().as_joules(), 2.0);
    }
}
