//! The BCP sender: buffer until `α·s*`, wake the receiver, burst, shut down.
//!
//! Sans-IO like the MACs: events arrive as method calls, effects leave as
//! [`SenderAction`]s. One high-power radio per node means **one active
//! session at a time**; other next hops wait their turn.
//!
//! Lifecycle per session (Section 3, sender side):
//!
//! ```text
//! buffer ≥ α·s* ──▶ SendWakeUp ──▶ WaitAck ──(ack)──▶ WakeHighRadio
//!                     ▲   │ timeout × attempts             │ radio ready
//!                     └───┘        │                        ▼
//!                              give up                  Bursting ──▶ Release
//! ```

use crate::buffer::NextHopBuffers;
use crate::config::BcpConfig;
use crate::frag::{pack_frames, total_bytes};
use crate::msg::{AppPacket, BurstId};
use bcp_net::addr::NodeId;
use bcp_sim::time::SimTime;
use std::collections::VecDeque;

/// Why buffered packets were abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The shared buffer was full on arrival.
    BufferOverflow,
    /// The high-radio MAC exhausted its retries on a burst frame.
    MacFailure,
}

/// Effects requested by the sender machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Send a wake-up message toward `to` over the low radio (it may be
    /// relayed over multiple low-radio hops).
    SendWakeUp {
        /// The receiver of the planned burst.
        to: NodeId,
        /// Handshake identity.
        burst: BurstId,
        /// Bytes the sender wants to move.
        burst_bytes: usize,
    },
    /// Arm the wake-up ack timeout for this handshake.
    ArmAckTimer {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Cancel the wake-up ack timeout.
    CancelAckTimer {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Acquire (power up) the high radio for this session.
    WakeHighRadio {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Transmit one burst frame over the high radio.
    SendBurstFrame {
        /// The receiver.
        to: NodeId,
        /// Handshake identity.
        burst: BurstId,
        /// Frame index within the burst.
        index: u32,
        /// Total frames in the burst (advertised to the receiver).
        count: u32,
        /// The application packets packed into this frame.
        packets: Vec<AppPacket>,
    },
    /// Release (allow powering down) the high radio.
    ReleaseHighRadio {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Packets irrecoverably lost; metrics should count them.
    PacketsDropped {
        /// The lost packets.
        packets: Vec<AppPacket>,
        /// Why they were lost.
        reason: DropReason,
    },
    /// Aged packets sent immediately over the low radio (delay-constrained
    /// fallback, the paper's Section 5 future work).
    SendLowData {
        /// The next hop (low-radio routing takes it from there).
        to: NodeId,
        /// The packets leaving the buffer.
        packets: Vec<AppPacket>,
    },
    /// A session finished (informational).
    SessionDone {
        /// Handshake identity.
        burst: BurstId,
        /// Packets handed to the high-radio MAC and acknowledged.
        delivered_packets: u64,
        /// Bytes likewise.
        delivered_bytes: usize,
    },
}

/// Sender behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Handshakes initiated.
    pub handshakes: u64,
    /// Wake-up retransmissions.
    pub wakeup_resends: u64,
    /// Handshakes abandoned after exhausting attempts.
    pub handshake_failures: u64,
    /// Bursts fully processed.
    pub bursts_completed: u64,
    /// Burst frames transmitted successfully (MAC-acked).
    pub frames_ok: u64,
    /// Burst frames the MAC gave up on.
    pub frames_failed: u64,
    /// Packets delivered into successful frames.
    pub packets_sent: u64,
    /// Payload bytes likewise.
    pub bytes_sent: u64,
    /// Packets diverted to the low radio by the delay bound.
    pub low_fallback_packets: u64,
    /// Handshakes abandoned because the grant was below the configured
    /// minimum.
    pub grant_rejections: u64,
}

#[derive(Debug, Clone)]
enum SessState {
    WaitAck { attempts: u32, requested: usize },
    WakingRadio { granted: usize },
    Bursting(Bursting),
}

#[derive(Debug, Clone)]
struct Bursting {
    pending: VecDeque<(u32, Vec<AppPacket>)>,
    count: u32,
    in_flight: Option<(u32, Vec<AppPacket>)>,
    delivered_packets: u64,
    delivered_bytes: usize,
}

#[derive(Debug, Clone)]
struct Session {
    next_hop: NodeId,
    burst: BurstId,
    state: SessState,
}

/// Exact mutable state of a [`BcpSender`], captured for checkpointing.
/// Plain data: every field is public and directly serializable; the config
/// is excluded (scenario-derived, re-supplied on restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderSnapshot {
    /// Per-next-hop buffer contents in first-use order.
    pub buffer_queues: Vec<(NodeId, Vec<AppPacket>)>,
    /// Buffer behaviour counters.
    pub buffer_stats: crate::buffer::BufferStats,
    /// The in-progress handshake/burst, if any.
    pub session: Option<SessionSnapshot>,
    /// Bursts initiated so far (feeds [`BurstId`] allocation).
    pub burst_counter: u64,
    /// Whether drain mode (threshold ignored) is in force.
    pub draining: bool,
    /// Behaviour counters.
    pub stats: SenderStats,
}

/// Captured form of one in-progress sender session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The receiver being handshaken/bursted to.
    pub next_hop: NodeId,
    /// Handshake identity.
    pub burst: BurstId,
    /// Captured machine position.
    pub state: SessStateSnapshot,
}

/// Captured form of [`SessionSnapshot`]'s machine position — mirrors the
/// private session-state enum field for field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessStateSnapshot {
    /// Wake-up sent; awaiting the ACK.
    WaitAck {
        /// Wake-ups sent so far for this handshake.
        attempts: u32,
        /// Bytes requested in the wake-up.
        requested: usize,
    },
    /// ACK granted; waiting for the high radio to come up.
    WakingRadio {
        /// Bytes granted by the receiver.
        granted: usize,
    },
    /// Burst frames moving on the high radio.
    Bursting {
        /// Frames not yet handed to the MAC: `(frame index, packets)`.
        pending: Vec<(u32, Vec<AppPacket>)>,
        /// Total frames in the burst.
        count: u32,
        /// The frame currently at the MAC, if any.
        in_flight: Option<(u32, Vec<AppPacket>)>,
        /// Packets confirmed delivered so far.
        delivered_packets: u64,
        /// Bytes likewise.
        delivered_bytes: usize,
    },
}

/// The per-node BCP sender machine.
///
/// # Examples
///
/// See the crate-level docs of `bcp-core` for a full handshake walk-through.
#[derive(Debug, Clone)]
pub struct BcpSender {
    node: NodeId,
    cfg: BcpConfig,
    buffers: NextHopBuffers,
    session: Option<Session>,
    burst_counter: u64,
    draining: bool,
    stats: SenderStats,
}

impl BcpSender {
    /// Creates the sender machine for `node`.
    pub fn new(node: NodeId, cfg: BcpConfig) -> Self {
        cfg.validate();
        let buffers = NextHopBuffers::new(cfg.buffer_cap_bytes);
        BcpSender {
            node,
            cfg,
            buffers,
            session: None,
            burst_counter: 0,
            draining: false,
            stats: SenderStats::default(),
        }
    }

    /// The node this machine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration in force.
    pub fn config(&self) -> &BcpConfig {
        &self.cfg
    }

    /// Buffer occupancy and drop counters.
    pub fn buffers(&self) -> &NextHopBuffers {
        &self.buffers
    }

    /// Behaviour counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// `true` while a handshake/burst is in progress.
    pub fn session_active(&self) -> bool {
        self.session.is_some()
    }

    /// Free buffer space — what this node would grant as a *receiver*
    /// (relays share one buffer pool between forwarding and reception).
    pub fn free_bytes(&self) -> usize {
        self.buffers.free_bytes()
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn snapshot_state(&self) -> SenderSnapshot {
        let (buffer_queues, buffer_stats) = self.buffers.snapshot_state();
        let session = self.session.as_ref().map(|s| SessionSnapshot {
            next_hop: s.next_hop,
            burst: s.burst,
            state: match &s.state {
                SessState::WaitAck {
                    attempts,
                    requested,
                } => SessStateSnapshot::WaitAck {
                    attempts: *attempts,
                    requested: *requested,
                },
                SessState::WakingRadio { granted } => {
                    SessStateSnapshot::WakingRadio { granted: *granted }
                }
                SessState::Bursting(b) => SessStateSnapshot::Bursting {
                    pending: b.pending.iter().cloned().collect(),
                    count: b.count,
                    in_flight: b.in_flight.clone(),
                    delivered_packets: b.delivered_packets,
                    delivered_bytes: b.delivered_bytes,
                },
            },
        });
        SenderSnapshot {
            buffer_queues,
            buffer_stats,
            session,
            burst_counter: self.burst_counter,
            draining: self.draining,
            stats: self.stats,
        }
    }

    /// Overwrites the mutable state with a captured [`SenderSnapshot`].
    /// The receiver must have been built with the same config.
    pub fn restore_state(&mut self, s: &SenderSnapshot) {
        self.buffers.restore_state(&s.buffer_queues, s.buffer_stats);
        self.session = s.session.as_ref().map(|sess| Session {
            next_hop: sess.next_hop,
            burst: sess.burst,
            state: match &sess.state {
                SessStateSnapshot::WaitAck {
                    attempts,
                    requested,
                } => SessState::WaitAck {
                    attempts: *attempts,
                    requested: *requested,
                },
                SessStateSnapshot::WakingRadio { granted } => {
                    SessState::WakingRadio { granted: *granted }
                }
                SessStateSnapshot::Bursting {
                    pending,
                    count,
                    in_flight,
                    delivered_packets,
                    delivered_bytes,
                } => SessState::Bursting(Bursting {
                    pending: pending.iter().cloned().collect(),
                    count: *count,
                    in_flight: in_flight.clone(),
                    delivered_packets: *delivered_packets,
                    delivered_bytes: *delivered_bytes,
                }),
            },
        });
        self.burst_counter = s.burst_counter;
        self.draining = s.draining;
        self.stats = s.stats;
    }

    /// The threshold currently in force: `α·s*` normally, one byte while
    /// draining.
    fn effective_threshold(&self) -> usize {
        if self.draining {
            1
        } else {
            self.cfg.threshold_bytes
        }
    }

    /// Enters drain mode: from now on, *any* buffered data (threshold
    /// ignored) triggers handshakes until the buffers are empty. Used at
    /// the end of finite workloads — the prototype experiment sends exactly
    /// 500 messages and then flushes.
    pub fn flush(&mut self, now: SimTime, out: &mut Vec<SenderAction>) {
        self.draining = true;
        self.maybe_start_session(now, out);
    }

    /// `true` once [`flush`](Self::flush) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// A data packet routed toward `next_hop` arrives for buffering.
    pub fn on_data(
        &mut self,
        now: SimTime,
        next_hop: NodeId,
        pkt: AppPacket,
        out: &mut Vec<SenderAction>,
    ) {
        if !self.buffers.push(next_hop, pkt) {
            out.push(SenderAction::PacketsDropped {
                packets: vec![pkt],
                reason: DropReason::BufferOverflow,
            });
            return;
        }
        self.apply_delay_bound(now, next_hop, out);
        self.maybe_start_session(now, out);
    }

    /// Delay-constrained fallback: divert aged packets to the low radio
    /// unless a session is about to move them anyway.
    fn apply_delay_bound(&mut self, now: SimTime, next_hop: NodeId, out: &mut Vec<SenderAction>) {
        let Some(bound) = self.cfg.delay_bound else {
            return;
        };
        if self
            .session
            .as_ref()
            .is_some_and(|s| s.next_hop == next_hop)
        {
            return; // a burst toward this hop is already in progress
        }
        if now < SimTime::ZERO + bound {
            return;
        }
        let cutoff = now - bound;
        let aged = self.buffers.take_older_than(next_hop, cutoff);
        if !aged.is_empty() {
            self.stats.low_fallback_packets += aged.len() as u64;
            out.push(SenderAction::SendLowData {
                to: next_hop,
                packets: aged,
            });
        }
    }

    /// Starts a handshake if no session is active and some next hop has
    /// crossed the threshold. Called internally after every buffer change;
    /// public so binders can retry after a failed handshake.
    pub fn maybe_start_session(&mut self, _now: SimTime, out: &mut Vec<SenderAction>) {
        if self.session.is_some() {
            return;
        }
        let Some(next_hop) = self
            .buffers
            .occupied_next_hops()
            .into_iter()
            .find(|nh| self.buffers.bytes_for(*nh) >= self.effective_threshold())
        else {
            return;
        };
        let burst = BurstId::new(self.node, self.burst_counter);
        self.burst_counter += 1;
        let requested = self
            .buffers
            .bytes_for(next_hop)
            .min(self.cfg.max_burst_bytes);
        self.stats.handshakes += 1;
        self.session = Some(Session {
            next_hop,
            burst,
            state: SessState::WaitAck {
                attempts: 1,
                requested,
            },
        });
        out.push(SenderAction::SendWakeUp {
            to: next_hop,
            burst,
            burst_bytes: requested,
        });
        out.push(SenderAction::ArmAckTimer { burst });
    }

    /// The wake-up ack arrived, granting `granted` bytes.
    pub fn on_wakeup_ack(
        &mut self,
        _now: SimTime,
        burst: BurstId,
        granted: usize,
        out: &mut Vec<SenderAction>,
    ) {
        let Some(session) = self.session.as_mut().filter(|s| s.burst == burst) else {
            return; // stale ack for an abandoned handshake
        };
        let SessState::WaitAck { requested, .. } = session.state else {
            return; // duplicate ack
        };
        out.push(SenderAction::CancelAckTimer { burst });
        let granted = granted.min(requested);
        if granted == 0 {
            // Receiver granted nothing: abandon (data stays buffered).
            self.stats.handshake_failures += 1;
            self.session = None;
            return;
        }
        if granted < self.cfg.min_grant_bytes {
            // "If this data size is less than s*, the sender might give up
            // sending" — the paper's unevaluated extension, opt-in here.
            self.stats.grant_rejections += 1;
            self.session = None;
            return;
        }
        session.state = SessState::WakingRadio { granted };
        out.push(SenderAction::WakeHighRadio { burst });
    }

    /// The wake-up ack timer fired.
    pub fn on_ack_timeout(&mut self, now: SimTime, burst: BurstId, out: &mut Vec<SenderAction>) {
        let Some(session) = self.session.as_mut().filter(|s| s.burst == burst) else {
            return;
        };
        let SessState::WaitAck {
            attempts,
            requested,
        } = &mut session.state
        else {
            return; // stale timer; ack already processed
        };
        if *attempts >= self.cfg.wakeup_attempts {
            // Give up; buffered data stays for a later attempt.
            self.stats.handshake_failures += 1;
            let next_hop = session.next_hop;
            self.session = None;
            // Another next hop may be eligible right away.
            let _ = next_hop;
            self.maybe_start_session(now, out);
            return;
        }
        *attempts += 1;
        self.stats.wakeup_resends += 1;
        let (to, req) = (session.next_hop, *requested);
        out.push(SenderAction::SendWakeUp {
            to,
            burst,
            burst_bytes: req,
        });
        out.push(SenderAction::ArmAckTimer { burst });
    }

    /// The high radio finished powering up: drain and start bursting.
    pub fn on_high_radio_ready(
        &mut self,
        now: SimTime,
        burst: BurstId,
        out: &mut Vec<SenderAction>,
    ) {
        let Some(session) = self.session.as_mut().filter(|s| s.burst == burst) else {
            return;
        };
        let SessState::WakingRadio { granted } = session.state else {
            return;
        };
        let next_hop = session.next_hop;
        let batch = self.buffers.take_up_to(next_hop, granted);
        if batch.is_empty() {
            // Everything drained elsewhere meanwhile (should not happen with
            // a single session, but stay safe): close the session.
            out.push(SenderAction::ReleaseHighRadio { burst });
            out.push(SenderAction::SessionDone {
                burst,
                delivered_packets: 0,
                delivered_bytes: 0,
            });
            self.session = None;
            self.maybe_start_session(now, out);
            return;
        }
        let frames = pack_frames(batch, self.cfg.frame_payload);
        let count = frames.len() as u32;
        let mut pending: VecDeque<(u32, Vec<AppPacket>)> = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| (i as u32, f))
            .collect();
        let first = pending.pop_front().expect("at least one frame");
        let session = self.session.as_mut().expect("session exists");
        session.state = SessState::Bursting(Bursting {
            pending,
            count,
            in_flight: Some(first.clone()),
            delivered_packets: 0,
            delivered_bytes: 0,
        });
        out.push(SenderAction::SendBurstFrame {
            to: next_hop,
            burst,
            index: first.0,
            count,
            packets: first.1,
        });
    }

    /// The high-radio MAC reported the outcome of the in-flight frame.
    pub fn on_frame_outcome(
        &mut self,
        now: SimTime,
        burst: BurstId,
        ok: bool,
        out: &mut Vec<SenderAction>,
    ) {
        let Some(session) = self.session.as_mut().filter(|s| s.burst == burst) else {
            return;
        };
        let next_hop = session.next_hop;
        let SessState::Bursting(b) = &mut session.state else {
            return;
        };
        let (_, packets) = b.in_flight.take().expect("outcome without in-flight frame");
        if ok {
            self.stats.frames_ok += 1;
            b.delivered_packets += packets.len() as u64;
            b.delivered_bytes += total_bytes(&packets);
            self.stats.packets_sent += packets.len() as u64;
            self.stats.bytes_sent += total_bytes(&packets) as u64;
        } else {
            self.stats.frames_failed += 1;
            out.push(SenderAction::PacketsDropped {
                packets,
                reason: DropReason::MacFailure,
            });
        }
        if let Some(next) = b.pending.pop_front() {
            b.in_flight = Some(next.clone());
            let count = b.count;
            out.push(SenderAction::SendBurstFrame {
                to: next_hop,
                burst,
                index: next.0,
                count,
                packets: next.1,
            });
        } else {
            let (dp, db) = (b.delivered_packets, b.delivered_bytes);
            self.stats.bursts_completed += 1;
            out.push(SenderAction::ReleaseHighRadio { burst });
            out.push(SenderAction::SessionDone {
                burst,
                delivered_packets: dp,
                delivered_bytes: db,
            });
            self.session = None;
            // Data may have crossed the threshold during the burst.
            self.maybe_start_session(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> BcpConfig {
        // Threshold of 10 packets of 32 B, like the paper's smallest burst.
        let mut c = BcpConfig::paper_defaults().with_burst_packets(10, 32);
        c.frame_payload = 128; // 4 packets per frame -> multi-frame bursts
        c
    }

    fn pkt(seq: u64) -> AppPacket {
        AppPacket::new(NodeId(5), NodeId(0), seq, SimTime::ZERO, 32)
    }

    fn drive_to_wakeup(s: &mut BcpSender) -> (BurstId, Vec<SenderAction>) {
        let mut out = Vec::new();
        for i in 0..10 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        let burst = out
            .iter()
            .find_map(|a| match a {
                SenderAction::SendWakeUp { burst, .. } => Some(*burst),
                _ => None,
            })
            .expect("wake-up sent at threshold");
        (burst, out)
    }

    #[test]
    fn threshold_triggers_wakeup() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let mut out = Vec::new();
        for i in 0..9 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        assert!(out.is_empty(), "below threshold: just buffer");
        s.on_data(SimTime::ZERO, NodeId(1), pkt(9), &mut out);
        match &out[..] {
            [SenderAction::SendWakeUp {
                to, burst_bytes, ..
            }, SenderAction::ArmAckTimer { .. }] => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(*burst_bytes, 320);
            }
            other => panic!("unexpected actions {other:?}"),
        }
        assert!(s.session_active());
    }

    #[test]
    fn full_burst_lifecycle() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        s.on_wakeup_ack(SimTime::ZERO, burst, 320, &mut out);
        assert!(out.contains(&SenderAction::CancelAckTimer { burst }));
        assert!(out.contains(&SenderAction::WakeHighRadio { burst }));

        out.clear();
        s.on_high_radio_ready(SimTime::ZERO, burst, &mut out);
        // 320 B at 128 B/frame = 3 frames (4+4+2 packets); first is sent.
        let (count, first_len) = match &out[..] {
            [SenderAction::SendBurstFrame {
                count,
                packets,
                index: 0,
                ..
            }] => (*count, packets.len()),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(count, 3);
        assert_eq!(first_len, 4);

        // Walk the remaining frames.
        for i in 1..count {
            out.clear();
            s.on_frame_outcome(SimTime::ZERO, burst, true, &mut out);
            assert!(
                matches!(&out[..], [SenderAction::SendBurstFrame { index, .. }] if *index == i)
            );
        }
        out.clear();
        s.on_frame_outcome(SimTime::ZERO, burst, true, &mut out);
        assert!(out.contains(&SenderAction::ReleaseHighRadio { burst }));
        assert!(matches!(
            out.iter()
                .find(|a| matches!(a, SenderAction::SessionDone { .. })),
            Some(SenderAction::SessionDone {
                delivered_packets: 10,
                delivered_bytes: 320,
                ..
            })
        ));
        assert!(!s.session_active());
        assert_eq!(s.stats().bursts_completed, 1);
        assert_eq!(s.stats().packets_sent, 10);
        s.buffers().check_conservation();
    }

    #[test]
    fn wakeup_retries_then_gives_up() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let attempts = s.config().wakeup_attempts;
        let mut out = Vec::new();
        for _ in 1..attempts {
            out.clear();
            s.on_ack_timeout(SimTime::ZERO, burst, &mut out);
            assert!(
                out.iter()
                    .any(|a| matches!(a, SenderAction::SendWakeUp { .. })),
                "resends while attempts remain"
            );
        }
        out.clear();
        s.on_ack_timeout(SimTime::ZERO, burst, &mut out);
        assert_eq!(s.stats().handshake_failures, 1);
        // Data is NOT lost: still buffered...
        assert_eq!(s.buffers().bytes_for(NodeId(1)), 320);
        // ...and since it is still over threshold, a brand-new handshake
        // (fresh burst id) starts right away.
        let new_burst = out.iter().find_map(|a| match a {
            SenderAction::SendWakeUp { burst, .. } => Some(*burst),
            _ => None,
        });
        assert!(new_burst.is_some_and(|b| b != burst), "fresh handshake");
        assert!(s.session_active());
    }

    #[test]
    fn grant_clamp_limits_burst() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        // Receiver only grants 128 B (4 packets).
        s.on_wakeup_ack(SimTime::ZERO, burst, 128, &mut out);
        out.clear();
        s.on_high_radio_ready(SimTime::ZERO, burst, &mut out);
        match &out[..] {
            [SenderAction::SendBurstFrame { count, packets, .. }] => {
                assert_eq!(*count, 1);
                assert_eq!(packets.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The other 6 packets remain buffered.
        assert_eq!(s.buffers().bytes_for(NodeId(1)), 192);
    }

    #[test]
    fn zero_grant_abandons() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        s.on_wakeup_ack(SimTime::ZERO, burst, 0, &mut out);
        assert!(!s.session_active());
        assert!(
            !out.iter()
                .any(|a| matches!(a, SenderAction::WakeHighRadio { .. })),
            "no radio wake on zero grant"
        );
        assert_eq!(s.buffers().bytes_for(NodeId(1)), 320, "data retained");
    }

    #[test]
    fn mac_failure_drops_frame_packets_and_continues() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        s.on_wakeup_ack(SimTime::ZERO, burst, 320, &mut out);
        out.clear();
        s.on_high_radio_ready(SimTime::ZERO, burst, &mut out);
        out.clear();
        // First frame fails at the MAC.
        s.on_frame_outcome(SimTime::ZERO, burst, false, &mut out);
        assert!(matches!(
            &out[0],
            SenderAction::PacketsDropped {
                reason: DropReason::MacFailure,
                packets
            } if packets.len() == 4
        ));
        assert!(
            out.iter()
                .any(|a| matches!(a, SenderAction::SendBurstFrame { index: 1, .. })),
            "burst continues with the next frame"
        );
        assert_eq!(s.stats().frames_failed, 1);
    }

    #[test]
    fn buffer_overflow_reports_drop() {
        let mut cfg = cfg_small();
        cfg.buffer_cap_bytes = 320; // exactly the threshold
        let mut s = BcpSender::new(NodeId(5), cfg);
        let mut out = Vec::new();
        for i in 0..10 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        out.clear();
        // Buffer is full (session pending but nothing drained yet).
        s.on_data(SimTime::ZERO, NodeId(1), pkt(10), &mut out);
        assert!(matches!(
            &out[..],
            [SenderAction::PacketsDropped {
                reason: DropReason::BufferOverflow,
                ..
            }]
        ));
    }

    #[test]
    fn single_session_at_a_time() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let mut out = Vec::new();
        // Cross threshold for two different next hops.
        for i in 0..10 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        for i in 10..20 {
            s.on_data(SimTime::ZERO, NodeId(2), pkt(i), &mut out);
        }
        let wakeups = out
            .iter()
            .filter(|a| matches!(a, SenderAction::SendWakeUp { .. }))
            .count();
        assert_eq!(wakeups, 1, "second hop waits for the radio");
    }

    #[test]
    fn next_hop_session_follows_completion() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let mut out = Vec::new();
        for i in 0..10 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        for i in 10..20 {
            s.on_data(SimTime::ZERO, NodeId(2), pkt(i), &mut out);
        }
        let (burst, _) = (
            match out.iter().find_map(|a| match a {
                SenderAction::SendWakeUp { burst, .. } => Some(*burst),
                _ => None,
            }) {
                Some(b) => b,
                None => panic!("no wakeup"),
            },
            (),
        );
        out.clear();
        s.on_wakeup_ack(SimTime::ZERO, burst, 320, &mut out);
        s.on_high_radio_ready(SimTime::ZERO, burst, &mut out);
        out.clear();
        // One frame of 4, then 4, then 2 packets: 3 outcomes total.
        for _ in 0..3 {
            s.on_frame_outcome(SimTime::ZERO, burst, true, &mut out);
        }
        // Session for NodeId(2) should start automatically.
        assert!(
            out.iter().any(|a| matches!(
                a,
                SenderAction::SendWakeUp { to, .. } if *to == NodeId(2)
            )),
            "next hop's session starts after completion: {out:?}"
        );
    }

    #[test]
    fn flush_drains_below_threshold() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let mut out = Vec::new();
        // Only 3 packets: well below the 10-packet threshold.
        for i in 0..3 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        assert!(out.is_empty() && !s.session_active());
        s.flush(SimTime::ZERO, &mut out);
        assert!(s.is_draining());
        assert!(
            matches!(
                &out[0],
                SenderAction::SendWakeUp {
                    burst_bytes: 96,
                    ..
                }
            ),
            "flush starts a sub-threshold handshake: {out:?}"
        );
        // And new arrivals during drain trigger immediately after the
        // current session; complete the session first.
        let burst = match &out[0] {
            SenderAction::SendWakeUp { burst, .. } => *burst,
            _ => unreachable!(),
        };
        out.clear();
        s.on_wakeup_ack(SimTime::ZERO, burst, 96, &mut out);
        s.on_high_radio_ready(SimTime::ZERO, burst, &mut out);
        out.clear();
        s.on_frame_outcome(SimTime::ZERO, burst, true, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, SenderAction::SessionDone { .. })));
        assert_eq!(s.buffers().total_bytes(), 0, "fully drained");
    }

    #[test]
    fn delay_bound_diverts_aged_packets() {
        use bcp_sim::time::SimDuration;
        let cfg = cfg_small().with_delay_bound(SimDuration::from_secs(10));
        let mut s = BcpSender::new(NodeId(5), cfg);
        let mut out = Vec::new();
        // Three packets at t=0: too few for the threshold.
        for i in 0..3 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        assert!(out.is_empty());
        // A fourth arrival at t=20s finds the first three aged out.
        let late = AppPacket::new(NodeId(5), NodeId(0), 9, SimTime::from_secs(20), 32);
        s.on_data(SimTime::from_secs(20), NodeId(1), late, &mut out);
        match &out[..] {
            [SenderAction::SendLowData { to, packets }] => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(packets.len(), 3, "aged prefix diverted");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.stats().low_fallback_packets, 3);
        // The fresh packet stays buffered for a future burst.
        assert_eq!(s.buffers().bytes_for(NodeId(1)), 32);
        s.buffers().check_conservation();
    }

    #[test]
    fn delay_bound_defers_to_active_session() {
        use bcp_sim::time::SimDuration;
        let cfg = cfg_small().with_delay_bound(SimDuration::from_secs(10));
        let mut s = BcpSender::new(NodeId(5), cfg);
        let mut out = Vec::new();
        for i in 0..10 {
            s.on_data(SimTime::ZERO, NodeId(1), pkt(i), &mut out);
        }
        assert!(s.session_active(), "threshold reached: session started");
        out.clear();
        // Aged data exists, but the session will carry it: no fallback.
        let late = AppPacket::new(NodeId(5), NodeId(0), 99, SimTime::from_secs(30), 32);
        s.on_data(SimTime::from_secs(30), NodeId(1), late, &mut out);
        assert!(
            !out.iter()
                .any(|a| matches!(a, SenderAction::SendLowData { .. })),
            "session in progress suppresses the fallback"
        );
    }

    #[test]
    fn small_grant_rejected_when_configured() {
        let cfg = cfg_small().with_min_grant(200);
        let mut s = BcpSender::new(NodeId(5), cfg);
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        s.on_wakeup_ack(SimTime::ZERO, burst, 100, &mut out);
        assert!(!s.session_active(), "grant below minimum: gave up");
        assert_eq!(s.stats().grant_rejections, 1);
        assert!(
            !out.iter()
                .any(|a| matches!(a, SenderAction::WakeHighRadio { .. })),
            "radio never woken for a rejected grant"
        );
        assert_eq!(s.buffers().bytes_for(NodeId(1)), 320, "data retained");
    }

    #[test]
    fn stale_events_are_ignored() {
        let mut s = BcpSender::new(NodeId(5), cfg_small());
        let (burst, _) = drive_to_wakeup(&mut s);
        let mut out = Vec::new();
        let bogus = BurstId::new(NodeId(9), 99);
        s.on_wakeup_ack(SimTime::ZERO, bogus, 320, &mut out);
        s.on_ack_timeout(SimTime::ZERO, bogus, &mut out);
        s.on_high_radio_ready(SimTime::ZERO, bogus, &mut out);
        s.on_frame_outcome(SimTime::ZERO, bogus, true, &mut out);
        assert!(out.is_empty(), "foreign burst ids do nothing");
        assert!(s.session_active());
        // Duplicate ack after the first is also ignored.
        s.on_wakeup_ack(SimTime::ZERO, burst, 320, &mut out);
        let n = out.len();
        s.on_wakeup_ack(SimTime::ZERO, burst, 320, &mut out);
        assert_eq!(out.len(), n, "duplicate ack ignored");
    }
}
