//! # bcp-core — the Bulk Communication Protocol
//!
//! The paper's contribution, as a pair of sans-IO state machines:
//!
//! * [`sender::BcpSender`] — buffers routed data per next hop
//!   ([`buffer::NextHopBuffers`]), and once a queue crosses the `α·s*`
//!   threshold ([`config::BcpConfig`]) runs the wake-up handshake over the
//!   low-power radio, powers the high radio, packs the queue into 1024 B
//!   frames ([`frag`]) and bursts them out.
//! * [`receiver::BcpReceiver`] — wakes its high radio on request, grants
//!   what its buffer can hold (or stays silent when full), reassembles
//!   bursts, and shuts the radio down as soon as everything advertised has
//!   arrived or a timeout expires.
//!
//! The break-even size `s*` comes from [`bcp_analysis`]; thresholds can be
//! set analytically ([`config::BcpConfig::with_breakeven_threshold`]), as a
//! fixed burst size like the paper's sweeps
//! ([`config::BcpConfig::with_burst_packets`]), or adaptively from observed
//! retransmissions ([`adaptive::AdaptiveThreshold`] — the paper's stated
//! future work).
//!
//! # Examples
//!
//! A complete sender-side handshake against hand-fed events:
//!
//! ```
//! use bcp_core::config::BcpConfig;
//! use bcp_core::msg::AppPacket;
//! use bcp_core::sender::{BcpSender, SenderAction};
//! use bcp_net::addr::NodeId;
//! use bcp_sim::time::SimTime;
//!
//! let cfg = BcpConfig::paper_defaults().with_burst_packets(10, 32);
//! let mut sender = BcpSender::new(NodeId(5), cfg);
//! let mut actions = Vec::new();
//! for seq in 0..10 {
//!     let pkt = AppPacket::new(NodeId(5), NodeId(0), seq, SimTime::ZERO, 32);
//!     sender.on_data(SimTime::ZERO, NodeId(1), pkt, &mut actions);
//! }
//! // Ten buffered packets hit the threshold: the handshake starts.
//! assert!(matches!(actions[0], SenderAction::SendWakeUp { burst_bytes: 320, .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod buffer;
pub mod config;
pub mod frag;
pub mod msg;
pub mod receiver;
pub mod sender;

pub use config::BcpConfig;
pub use msg::{AppPacket, BurstId, HandshakeMsg, PacketId};
pub use receiver::{BcpReceiver, ReceiverAction, ReceiverStats};
pub use sender::{BcpSender, DropReason, SenderAction, SenderStats};
