//! Per-next-hop packet buffering.
//!
//! Section 3: "Data messages for different receivers are buffered
//! separately, so messages for the same next hop can be combined and sent
//! to that next hop." The capacity is shared across next hops (the paper's
//! single "buffer size" of 5000 × 32 B), with drop-tail on overflow.

use crate::msg::AppPacket;
use bcp_net::addr::NodeId;
use std::collections::VecDeque;

/// Shared-capacity, per-next-hop FIFO buffers.
///
/// # Examples
///
/// ```
/// use bcp_core::buffer::NextHopBuffers;
/// use bcp_core::msg::AppPacket;
/// use bcp_net::addr::NodeId;
/// use bcp_sim::time::SimTime;
///
/// let mut b = NextHopBuffers::new(1024);
/// let pkt = AppPacket::new(NodeId(1), NodeId(0), 0, SimTime::ZERO, 32);
/// assert!(b.push(NodeId(9), pkt));
/// assert_eq!(b.bytes_for(NodeId(9)), 32);
/// let burst = b.take_up_to(NodeId(9), 64);
/// assert_eq!(burst.len(), 1);
/// assert_eq!(b.total_bytes(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NextHopBuffers {
    cap_bytes: usize,
    total_bytes: usize,
    // Deterministic iteration order (insertion order of next hops).
    queues: Vec<(NodeId, VecDeque<AppPacket>, usize)>,
    stats: BufferStats,
}

/// Buffer behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets rejected because the shared capacity was exhausted.
    pub overflow_drops: u64,
    /// Packets handed out for bursting.
    pub drained: u64,
}

impl NextHopBuffers {
    /// Creates buffers with a shared byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bytes == 0`.
    pub fn new(cap_bytes: usize) -> Self {
        assert!(cap_bytes > 0, "buffer capacity must be positive");
        NextHopBuffers {
            cap_bytes,
            total_bytes: 0,
            queues: Vec::new(),
            stats: BufferStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Bytes currently buffered across all next hops.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Remaining capacity in bytes.
    pub fn free_bytes(&self) -> usize {
        self.cap_bytes - self.total_bytes
    }

    /// Behaviour counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Bytes buffered for one next hop.
    pub fn bytes_for(&self, next_hop: NodeId) -> usize {
        self.queues
            .iter()
            .find(|(n, ..)| *n == next_hop)
            .map(|(_, _, bytes)| *bytes)
            .unwrap_or(0)
    }

    /// Packets buffered for one next hop.
    pub fn packets_for(&self, next_hop: NodeId) -> usize {
        self.queues
            .iter()
            .find(|(n, ..)| *n == next_hop)
            .map(|(_, q, _)| q.len())
            .unwrap_or(0)
    }

    /// Next hops with at least one buffered packet, in first-use order.
    pub fn occupied_next_hops(&self) -> Vec<NodeId> {
        self.queues
            .iter()
            .filter(|(_, q, _)| !q.is_empty())
            .map(|(n, ..)| *n)
            .collect()
    }

    /// Buffers `pkt` for `next_hop`. Returns `false` (and counts an
    /// overflow drop) when the shared capacity cannot hold it.
    pub fn push(&mut self, next_hop: NodeId, pkt: AppPacket) -> bool {
        if self.total_bytes + pkt.bytes > self.cap_bytes {
            self.stats.overflow_drops += 1;
            return false;
        }
        self.total_bytes += pkt.bytes;
        self.stats.enqueued += 1;
        match self.queues.iter_mut().find(|(n, ..)| *n == next_hop) {
            Some((_, q, bytes)) => {
                q.push_back(pkt);
                *bytes += pkt.bytes;
            }
            None => {
                let mut q = VecDeque::new();
                q.push_back(pkt);
                self.queues.push((next_hop, q, pkt.bytes));
            }
        }
        true
    }

    /// Removes and returns the FIFO prefix of `next_hop`'s queue whose total
    /// size fits in `limit_bytes` (whole packets only; at least one packet
    /// is returned if the queue is non-empty and its head fits).
    pub fn take_up_to(&mut self, next_hop: NodeId, limit_bytes: usize) -> Vec<AppPacket> {
        let Some((_, q, bytes)) = self.queues.iter_mut().find(|(n, ..)| *n == next_hop) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut taken = 0usize;
        while let Some(head) = q.front() {
            if taken + head.bytes > limit_bytes {
                break;
            }
            let pkt = q.pop_front().expect("front observed");
            taken += pkt.bytes;
            out.push(pkt);
        }
        *bytes -= taken;
        self.total_bytes -= taken;
        self.stats.drained += out.len() as u64;
        out
    }

    /// Removes and returns the FIFO prefix of `next_hop`'s queue whose
    /// packets were created at or before `cutoff` (the delay-bound
    /// fallback's "aged" packets).
    pub fn take_older_than(
        &mut self,
        next_hop: NodeId,
        cutoff: bcp_sim::time::SimTime,
    ) -> Vec<AppPacket> {
        let Some((_, q, bytes)) = self.queues.iter_mut().find(|(n, ..)| *n == next_hop) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut taken = 0usize;
        while let Some(head) = q.front() {
            if head.created > cutoff {
                break;
            }
            let pkt = q.pop_front().expect("front observed");
            taken += pkt.bytes;
            out.push(pkt);
        }
        *bytes -= taken;
        self.total_bytes -= taken;
        self.stats.drained += out.len() as u64;
        out
    }

    /// The raw buffer registers for exact checkpointing: the per-next-hop
    /// queues in their deterministic first-use order, plus the stats. The
    /// per-queue and total byte tallies are recomputed on restore.
    pub fn snapshot_state(&self) -> (Vec<(NodeId, Vec<AppPacket>)>, BufferStats) {
        let queues = self
            .queues
            .iter()
            .map(|(n, q, _)| (*n, q.iter().copied().collect()))
            .collect();
        (queues, self.stats)
    }

    /// Overwrites the buffer contents and stats with captured values,
    /// preserving queue order (which decides future round-robin choices).
    ///
    /// # Panics
    ///
    /// Panics if the restored packets exceed this buffer's capacity.
    pub fn restore_state(&mut self, queues: &[(NodeId, Vec<AppPacket>)], stats: BufferStats) {
        self.queues = queues
            .iter()
            .map(|(n, pkts)| {
                let bytes = pkts.iter().map(|p| p.bytes).sum();
                (*n, pkts.iter().copied().collect(), bytes)
            })
            .collect();
        self.total_bytes = self.queues.iter().map(|(_, _, b)| *b).sum();
        assert!(
            self.total_bytes <= self.cap_bytes,
            "restored buffer contents exceed capacity"
        );
        self.stats = stats;
    }

    /// Conservation invariant: enqueued = drained + resident + dropped never
    /// counts twice. (Used by property tests; cheap enough to assert in
    /// debug runs.)
    pub fn check_conservation(&self) {
        let resident: u64 = self.queues.iter().map(|(_, q, _)| q.len() as u64).sum();
        assert_eq!(
            self.stats.enqueued,
            self.stats.drained + resident,
            "packet conservation violated"
        );
        let byte_sum: usize = self.queues.iter().map(|(_, _, b)| *b).sum();
        assert_eq!(byte_sum, self.total_bytes, "byte accounting violated");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_sim::time::SimTime;

    fn pkt(origin: u32, seq: u64) -> AppPacket {
        AppPacket::new(NodeId(origin), NodeId(0), seq, SimTime::ZERO, 32)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = NextHopBuffers::new(10_000);
        for i in 0..5 {
            b.push(NodeId(1), pkt(7, i));
        }
        let burst = b.take_up_to(NodeId(1), 1_000);
        let seqs: Vec<u64> = burst.iter().map(|p| p.id.0 & 0xff).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn separate_queues_per_next_hop() {
        let mut b = NextHopBuffers::new(10_000);
        b.push(NodeId(1), pkt(7, 0));
        b.push(NodeId(2), pkt(7, 1));
        b.push(NodeId(1), pkt(7, 2));
        assert_eq!(b.bytes_for(NodeId(1)), 64);
        assert_eq!(b.bytes_for(NodeId(2)), 32);
        assert_eq!(b.packets_for(NodeId(1)), 2);
        assert_eq!(b.occupied_next_hops(), vec![NodeId(1), NodeId(2)]);
        b.check_conservation();
    }

    #[test]
    fn shared_capacity_overflow() {
        // Paper buffer: 5000 × 32 B. Use a tiny one: 3 packets.
        let mut b = NextHopBuffers::new(96);
        assert!(b.push(NodeId(1), pkt(7, 0)));
        assert!(b.push(NodeId(2), pkt(7, 1)));
        assert!(b.push(NodeId(1), pkt(7, 2)));
        assert!(!b.push(NodeId(3), pkt(7, 3)), "capacity exhausted");
        assert_eq!(b.stats().overflow_drops, 1);
        assert_eq!(b.free_bytes(), 0);
        b.check_conservation();
    }

    #[test]
    fn take_up_to_respects_limit_and_whole_packets() {
        let mut b = NextHopBuffers::new(10_000);
        for i in 0..10 {
            b.push(NodeId(1), pkt(7, i));
        }
        // 100 B limit at 32 B packets: exactly 3 packets.
        let burst = b.take_up_to(NodeId(1), 100);
        assert_eq!(burst.len(), 3);
        assert_eq!(b.packets_for(NodeId(1)), 7);
        assert_eq!(b.total_bytes(), 7 * 32);
        b.check_conservation();
    }

    #[test]
    fn take_from_empty_or_unknown_hop() {
        let mut b = NextHopBuffers::new(1_000);
        assert!(b.take_up_to(NodeId(9), 100).is_empty());
        b.push(NodeId(1), pkt(7, 0));
        b.take_up_to(NodeId(1), 100);
        assert!(b.take_up_to(NodeId(1), 100).is_empty());
        b.check_conservation();
    }

    #[test]
    fn zero_limit_takes_nothing() {
        let mut b = NextHopBuffers::new(1_000);
        b.push(NodeId(1), pkt(7, 0));
        assert!(b.take_up_to(NodeId(1), 0).is_empty());
        assert_eq!(b.total_bytes(), 32);
    }

    #[test]
    fn freed_capacity_is_reusable() {
        let mut b = NextHopBuffers::new(64);
        b.push(NodeId(1), pkt(7, 0));
        b.push(NodeId(1), pkt(7, 1));
        assert!(!b.push(NodeId(1), pkt(7, 2)));
        b.take_up_to(NodeId(1), 32);
        assert!(b.push(NodeId(1), pkt(7, 3)), "freed space accepts again");
        b.check_conservation();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = NextHopBuffers::new(0);
    }
}
