//! Protocol parameters.

use bcp_analysis::model::DualRadioLink;
use bcp_sim::time::SimDuration;

/// Tunable parameters of BCP.
///
/// The central knob is [`threshold_bytes`](BcpConfig::threshold_bytes) —
/// the `α·s*` buffering threshold of Section 3 ("a node buffers data until
/// it reaches α times the break-even point"). The paper sweeps it directly
/// in packets (burst sizes 10–2500 × 32 B), and recommends "10 K based on
/// our analysis" when the radio characteristics are unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct BcpConfig {
    /// Buffered bytes per next hop that trigger a wake-up handshake (α·s*).
    pub threshold_bytes: usize,
    /// Payload capacity of one high-radio frame (1024 B in the paper).
    pub frame_payload: usize,
    /// Total buffering capacity in bytes (5000 × 32 B in the paper).
    pub buffer_cap_bytes: usize,
    /// How long the sender waits for a wake-up ack before resending
    /// ("If the sender times out before receiving an ack, a wake-up message
    /// is resent to the receiver").
    pub wakeup_ack_timeout: SimDuration,
    /// Total wake-up attempts before the handshake is abandoned.
    pub wakeup_attempts: u32,
    /// Receiver-side patience for the first/next data frame ("To avoid
    /// waiting for the sender data indefinitely, the receiver times out and
    /// turns its high-power radio off").
    pub receiver_data_timeout: SimDuration,
    /// Upper bound on one burst (drains at most this much per handshake).
    pub max_burst_bytes: usize,
    /// Delay-constrained fallback (the paper's Section 5 future work):
    /// packets older than this are sent immediately over the low-power
    /// radio instead of waiting for the burst threshold. `None` = pure BCP.
    pub delay_bound: Option<SimDuration>,
    /// Abort the handshake when the receiver grants less than this many
    /// bytes (the paper: "if this data size is less than s*, the sender
    /// might give up sending. However, this extension is not evaluated").
    pub min_grant_bytes: usize,
}

impl BcpConfig {
    /// The paper's defaults: 10 KB threshold (the "rule of thumb"), 1024 B
    /// high-radio frames, 5000×32 B of buffer, 500 ms handshake timeout
    /// with 3 attempts, 1 s receiver patience, 80 KB burst cap.
    pub fn paper_defaults() -> Self {
        BcpConfig {
            threshold_bytes: 10 * 1024,
            frame_payload: 1024,
            buffer_cap_bytes: 5000 * 32,
            wakeup_ack_timeout: SimDuration::from_millis(500),
            wakeup_attempts: 3,
            receiver_data_timeout: SimDuration::from_secs(1),
            max_burst_bytes: 80 * 1024,
            delay_bound: None,
            min_grant_bytes: 0,
        }
    }

    /// Enables the delay-constrained low-radio fallback.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn with_delay_bound(mut self, bound: SimDuration) -> Self {
        assert!(!bound.is_zero(), "delay bound must be positive");
        self.delay_bound = Some(bound);
        self
    }

    /// Gives up handshakes whose grant is below `bytes`.
    pub fn with_min_grant(mut self, bytes: usize) -> Self {
        self.min_grant_bytes = bytes;
        self
    }

    /// Threshold expressed as the paper's burst-size sweep parameter:
    /// `n` sensor packets of `pkt_bytes` each (e.g. `500 × 32 B`).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn with_burst_packets(mut self, n: usize, pkt_bytes: usize) -> Self {
        assert!(n > 0 && pkt_bytes > 0, "burst must be positive");
        self.threshold_bytes = n * pkt_bytes;
        self
    }

    /// Threshold computed as `α · s*` from the radio profiles — the
    /// protocol's analytical mode ("to calculate s*, it is necessary to
    /// know the energy characteristics of both radios"). Falls back to the
    /// paper's 10 KB rule of thumb when the pairing has no break-even.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0`.
    pub fn with_breakeven_threshold(mut self, link: &DualRadioLink, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "invalid alpha {alpha}");
        self.threshold_bytes = match link.break_even_bytes() {
            Some(s_star) => (alpha * s_star).ceil() as usize,
            None => 10 * 1024,
        };
        self
    }

    /// Returns a copy with a different buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is smaller than one frame payload.
    pub fn with_buffer_cap(mut self, cap: usize) -> Self {
        assert!(
            cap >= self.frame_payload,
            "buffer must hold at least one frame"
        );
        self.buffer_cap_bytes = cap;
        self
    }

    /// Validates internal consistency (call after manual field edits).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated; the messages name the field.
    pub fn validate(&self) {
        assert!(self.threshold_bytes > 0, "threshold_bytes must be positive");
        assert!(self.frame_payload > 0, "frame_payload must be positive");
        assert!(
            self.buffer_cap_bytes >= self.threshold_bytes,
            "buffer smaller than threshold can never trigger a burst"
        );
        assert!(self.wakeup_attempts >= 1, "need at least one wake-up try");
        assert!(
            self.max_burst_bytes >= self.frame_payload,
            "burst cap below one frame"
        );
        assert!(
            !self.wakeup_ack_timeout.is_zero() && !self.receiver_data_timeout.is_zero(),
            "timeouts must be positive"
        );
    }
}

impl Default for BcpConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_radio::profile::{cabletron, lucent_11m, micaz};

    #[test]
    fn paper_defaults_validate() {
        BcpConfig::paper_defaults().validate();
    }

    #[test]
    fn burst_packets_sets_threshold() {
        let c = BcpConfig::paper_defaults().with_burst_packets(500, 32);
        assert_eq!(c.threshold_bytes, 16_000);
        c.validate();
    }

    #[test]
    fn breakeven_threshold_scales_with_alpha() {
        let link = DualRadioLink::new(micaz(), lucent_11m());
        let c1 = BcpConfig::paper_defaults().with_breakeven_threshold(&link, 1.0);
        let c3 = BcpConfig::paper_defaults().with_breakeven_threshold(&link, 3.0);
        assert!(c3.threshold_bytes >= 3 * c1.threshold_bytes - 3);
        assert!(c1.threshold_bytes < 1024, "s* below 1 KB for this pairing");
    }

    #[test]
    fn infeasible_pairing_falls_back_to_rule_of_thumb() {
        let link = DualRadioLink::new(micaz(), cabletron());
        let c = BcpConfig::paper_defaults().with_breakeven_threshold(&link, 2.0);
        assert_eq!(c.threshold_bytes, 10 * 1024, "paper's 10 K rule of thumb");
    }

    #[test]
    #[should_panic(expected = "buffer smaller than threshold")]
    fn validate_rejects_buffer_below_threshold() {
        let mut c = BcpConfig::paper_defaults();
        c.buffer_cap_bytes = c.threshold_bytes - 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn zero_alpha_rejected() {
        let link = DualRadioLink::new(micaz(), lucent_11m());
        let _ = BcpConfig::paper_defaults().with_breakeven_threshold(&link, 0.0);
    }
}
