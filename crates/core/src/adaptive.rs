//! Adaptive break-even threshold (the paper's stated future work).
//!
//! Section 3: "Currently, the calculation of s* does not include the
//! expected number of retransmissions, since it is hard to predict this
//! number before using the radios. ... We leave adapting s* based on
//! retransmissions as future work."
//!
//! [`AdaptiveThreshold`] implements that extension: it keeps exponentially
//! weighted moving averages of the per-frame transmission counts observed
//! on each radio and recomputes `α·s*` with those factors folded into
//! Equations (1)–(3).

use bcp_analysis::model::DualRadioLink;

/// EWMA-driven threshold adaptation.
///
/// # Examples
///
/// ```
/// use bcp_core::adaptive::AdaptiveThreshold;
/// use bcp_analysis::model::DualRadioLink;
/// use bcp_radio::profile::{lucent_11m, micaz};
///
/// let mut a = AdaptiveThreshold::new(DualRadioLink::new(micaz(), lucent_11m()), 2.0, 0.2);
/// let base = a.threshold_bytes();
/// // The high radio starts needing 2 transmissions per frame on average:
/// for _ in 0..50 { a.observe_high(2.0); }
/// assert!(a.threshold_bytes() > base, "lossy high radio raises the bar");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveThreshold {
    link: DualRadioLink,
    alpha: f64,
    gain: f64,
    ewma_low: f64,
    ewma_high: f64,
    fallback_bytes: usize,
}

impl AdaptiveThreshold {
    /// Creates an adapter over `link` with burst factor `alpha` and EWMA
    /// gain `gain` (0 < gain ≤ 1; higher = faster reaction).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `0 < gain <= 1`.
    pub fn new(link: DualRadioLink, alpha: f64, gain: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "invalid alpha {alpha}");
        assert!(gain > 0.0 && gain <= 1.0, "invalid gain {gain}");
        AdaptiveThreshold {
            link,
            alpha,
            gain,
            ewma_low: 1.0,
            ewma_high: 1.0,
            fallback_bytes: 10 * 1024,
        }
    }

    /// Records an observed transmission count for one low-radio frame
    /// (1.0 = delivered first try).
    ///
    /// # Panics
    ///
    /// Panics if `attempts < 1`.
    pub fn observe_low(&mut self, attempts: f64) {
        assert!(attempts >= 1.0, "a frame is transmitted at least once");
        self.ewma_low += self.gain * (attempts - self.ewma_low);
    }

    /// Records an observed transmission count for one high-radio frame.
    ///
    /// # Panics
    ///
    /// Panics if `attempts < 1`.
    pub fn observe_high(&mut self, attempts: f64) {
        assert!(attempts >= 1.0, "a frame is transmitted at least once");
        self.ewma_high += self.gain * (attempts - self.ewma_high);
    }

    /// Current smoothed transmission counts `(low, high)`.
    pub fn factors(&self) -> (f64, f64) {
        (self.ewma_low, self.ewma_high)
    }

    /// The current `α·s*` in bytes, recomputed with the observed
    /// retransmission factors. Falls back to the 10 KB rule of thumb when
    /// the adapted link has no break-even (the high radio has become so
    /// lossy it never pays off).
    pub fn threshold_bytes(&self) -> usize {
        let adapted = self.link.clone().with_retx(self.ewma_low, self.ewma_high);
        match adapted.break_even_bytes() {
            Some(s) => (self.alpha * s).ceil() as usize,
            None => self.fallback_bytes,
        }
    }

    /// `true` while the adapted link still has a finite break-even (the
    /// high radio remains worth waking at some burst size).
    pub fn high_radio_viable(&self) -> bool {
        self.link
            .clone()
            .with_retx(self.ewma_low, self.ewma_high)
            .break_even_bytes()
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_radio::profile::{lucent_11m, mica, micaz};

    fn adapter() -> AdaptiveThreshold {
        AdaptiveThreshold::new(DualRadioLink::new(micaz(), lucent_11m()), 2.0, 0.25)
    }

    #[test]
    fn starts_at_static_threshold() {
        let a = adapter();
        let static_s = DualRadioLink::new(micaz(), lucent_11m())
            .break_even_bytes()
            .unwrap();
        assert_eq!(a.threshold_bytes(), (2.0 * static_s).ceil() as usize);
        assert_eq!(a.factors(), (1.0, 1.0));
    }

    #[test]
    fn high_losses_raise_threshold() {
        let mut a = adapter();
        let base = a.threshold_bytes();
        for _ in 0..100 {
            a.observe_high(2.5);
        }
        assert!(a.threshold_bytes() > base);
        let (_, high) = a.factors();
        assert!((high - 2.5).abs() < 0.05, "EWMA converged: {high}");
    }

    #[test]
    fn low_losses_lower_threshold() {
        let mut a = adapter();
        let base = a.threshold_bytes();
        for _ in 0..100 {
            a.observe_low(2.0);
        }
        assert!(
            a.threshold_bytes() < base,
            "lossy sensor radio favours the 802.11 side"
        );
    }

    #[test]
    fn extreme_high_losses_kill_viability() {
        // Drive the high radio's effective per-bit cost above the sensor's.
        let mut a = AdaptiveThreshold::new(DualRadioLink::new(micaz(), lucent_11m()), 1.0, 1.0);
        assert!(a.high_radio_viable());
        a.observe_high(10.0);
        assert!(!a.high_radio_viable());
        assert_eq!(
            a.threshold_bytes(),
            10 * 1024,
            "falls back to rule of thumb"
        );
    }

    #[test]
    fn recovery_restores_threshold() {
        let mut a = adapter();
        let base = a.threshold_bytes();
        for _ in 0..50 {
            a.observe_high(3.0);
        }
        let degraded = a.threshold_bytes();
        for _ in 0..200 {
            a.observe_high(1.0);
        }
        let recovered = a.threshold_bytes();
        assert!(degraded > base);
        assert!(
            (recovered as i64 - base as i64).unsigned_abs() <= base as u64 / 50,
            "threshold returns near the static value: {base} -> {recovered}"
        );
    }

    #[test]
    fn works_for_mica_pairing_too() {
        let mut a = AdaptiveThreshold::new(DualRadioLink::new(mica(), lucent_11m()), 1.5, 0.5);
        let t0 = a.threshold_bytes();
        a.observe_low(4.0);
        assert!(a.threshold_bytes() < t0);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_attempts_rejected() {
        adapter().observe_high(0.5);
    }
}
