//! Packing sensor packets into high-radio frames, and reassembly tracking.
//!
//! Section 3: "The allowed amount of data is assembled into packets for the
//! high-power radio"; at the receiver, "data messages are received as an
//! assembly of multiple packets from the MAC layer of the high-power radio
//! and are fragmented into the original packets by BCP."

use crate::msg::{AppPacket, BurstId};

/// Greedily packs packets (FIFO, order-preserving) into frames of at most
/// `frame_cap` payload bytes.
///
/// # Panics
///
/// Panics if any single packet exceeds `frame_cap` (BCP never splits an
/// application packet across high-radio frames) or if `frame_cap == 0`.
pub fn pack_frames(packets: Vec<AppPacket>, frame_cap: usize) -> Vec<Vec<AppPacket>> {
    assert!(frame_cap > 0, "frame capacity must be positive");
    let mut frames: Vec<Vec<AppPacket>> = Vec::new();
    let mut current: Vec<AppPacket> = Vec::new();
    let mut used = 0usize;
    for pkt in packets {
        assert!(
            pkt.bytes <= frame_cap,
            "packet of {} B exceeds frame capacity {frame_cap} B",
            pkt.bytes
        );
        if used + pkt.bytes > frame_cap {
            frames.push(core::mem::take(&mut current));
            used = 0;
        }
        used += pkt.bytes;
        current.push(pkt);
    }
    if !current.is_empty() {
        frames.push(current);
    }
    frames
}

/// Total payload bytes of a packet slice.
pub fn total_bytes(packets: &[AppPacket]) -> usize {
    packets.iter().map(|p| p.bytes).sum()
}

/// Receiver-side progress of one burst's reassembly.
///
/// Tracks which frame indices arrived so lost frames (MAC gave up) are
/// detected and the radio can be closed as soon as everything advertised
/// has been seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reassembly {
    burst: BurstId,
    expected_frames: u32,
    seen: Vec<bool>,
    packets_received: u64,
    bytes_received: usize,
}

impl Reassembly {
    /// Starts tracking a burst advertised as `expected_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `expected_frames == 0`.
    pub fn new(burst: BurstId, expected_frames: u32) -> Self {
        assert!(expected_frames > 0, "bursts carry at least one frame");
        Reassembly {
            burst,
            expected_frames,
            seen: vec![false; expected_frames as usize],
            packets_received: 0,
            bytes_received: 0,
        }
    }

    /// The burst being reassembled.
    pub fn burst(&self) -> BurstId {
        self.burst
    }

    /// Records frame `index` carrying `packets`; returns `false` for
    /// duplicates (already seen) and `true` for fresh frames.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of the advertised range.
    pub fn record_frame(&mut self, index: u32, packets: &[AppPacket]) -> bool {
        assert!(
            index < self.expected_frames,
            "frame index {index} outside advertised count {}",
            self.expected_frames
        );
        if self.seen[index as usize] {
            return false;
        }
        self.seen[index as usize] = true;
        self.packets_received += packets.len() as u64;
        self.bytes_received += total_bytes(packets);
        true
    }

    /// `true` once every advertised frame has arrived — the receiver's
    /// "turns off its high-power radio when it receives the total number of
    /// packets advertised".
    pub fn is_complete(&self) -> bool {
        self.seen.iter().all(|&s| s)
    }

    /// Frames received so far.
    pub fn frames_received(&self) -> u32 {
        self.seen.iter().filter(|&&s| s).count() as u32
    }

    /// Frames still missing.
    pub fn frames_missing(&self) -> u32 {
        self.expected_frames - self.frames_received()
    }

    /// Application packets received so far.
    pub fn packets_received(&self) -> u64 {
        self.packets_received
    }

    /// Payload bytes received so far.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// The raw progress registers `(burst, seen, packets, bytes)`, for
    /// exact checkpointing.
    pub fn raw_parts(&self) -> (BurstId, Vec<bool>, u64, usize) {
        (
            self.burst,
            self.seen.clone(),
            self.packets_received,
            self.bytes_received,
        )
    }

    /// Rebuilds reassembly progress from registers captured by
    /// [`raw_parts`](Self::raw_parts).
    ///
    /// # Panics
    ///
    /// Panics if `seen` is empty (bursts carry at least one frame).
    pub fn from_raw_parts(
        burst: BurstId,
        seen: Vec<bool>,
        packets_received: u64,
        bytes_received: usize,
    ) -> Self {
        assert!(!seen.is_empty(), "bursts carry at least one frame");
        Reassembly {
            burst,
            expected_frames: seen.len() as u32,
            seen,
            packets_received,
            bytes_received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_net::addr::NodeId;
    use bcp_sim::time::SimTime;

    fn pkt(seq: u64, bytes: usize) -> AppPacket {
        AppPacket::new(NodeId(1), NodeId(0), seq, SimTime::ZERO, bytes)
    }

    #[test]
    fn packs_exactly_32_per_1024_frame() {
        // The paper's sizes: 32 packets of 32 B fill one 1024 B frame.
        let packets: Vec<AppPacket> = (0..64).map(|i| pkt(i, 32)).collect();
        let frames = pack_frames(packets, 1024);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].len(), 32);
        assert_eq!(frames[1].len(), 32);
    }

    #[test]
    fn tail_frame_is_partial() {
        let packets: Vec<AppPacket> = (0..33).map(|i| pkt(i, 32)).collect();
        let frames = pack_frames(packets, 1024);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].len(), 1, "one packet spills into a new frame");
    }

    #[test]
    fn order_is_preserved_across_frames() {
        let packets: Vec<AppPacket> = (0..100).map(|i| pkt(i, 32)).collect();
        let frames = pack_frames(packets.clone(), 1024);
        let flat: Vec<AppPacket> = frames.into_iter().flatten().collect();
        assert_eq!(flat, packets, "pack/flatten is the identity");
    }

    #[test]
    fn mixed_sizes_never_overflow_cap() {
        let sizes = [100, 500, 300, 700, 50, 1024, 10, 10, 10];
        let packets: Vec<AppPacket> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| pkt(i as u64, b))
            .collect();
        let frames = pack_frames(packets, 1024);
        for f in &frames {
            assert!(total_bytes(f) <= 1024);
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn empty_input_no_frames() {
        assert!(pack_frames(Vec::new(), 1024).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds frame capacity")]
    fn oversize_packet_panics() {
        let _ = pack_frames(vec![pkt(0, 2048)], 1024);
    }

    #[test]
    fn reassembly_tracks_completion() {
        let b = BurstId::new(NodeId(1), 0);
        let mut r = Reassembly::new(b, 3);
        assert!(!r.is_complete());
        assert!(r.record_frame(0, &[pkt(0, 32), pkt(1, 32)]));
        assert!(r.record_frame(2, &[pkt(2, 32)]));
        assert_eq!(r.frames_missing(), 1);
        assert!(r.record_frame(1, &[pkt(3, 32)]));
        assert!(r.is_complete());
        assert_eq!(r.packets_received(), 4);
        assert_eq!(r.bytes_received(), 128);
    }

    #[test]
    fn duplicate_frames_detected() {
        let b = BurstId::new(NodeId(1), 0);
        let mut r = Reassembly::new(b, 2);
        assert!(r.record_frame(0, &[pkt(0, 32)]));
        assert!(!r.record_frame(0, &[pkt(0, 32)]), "duplicate");
        assert_eq!(r.packets_received(), 1, "duplicates not double counted");
    }

    #[test]
    #[should_panic(expected = "outside advertised count")]
    fn out_of_range_index_panics() {
        let mut r = Reassembly::new(BurstId::new(NodeId(1), 0), 2);
        r.record_frame(2, &[]);
    }
}
