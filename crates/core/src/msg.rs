//! BCP's data unit and control messages.
//!
//! The protocol buffers *application packets* (the 32 B sensor readings of
//! the paper) and moves them in bulk. Packets are modelled structurally —
//! identity, origin, size and birth time — because the evaluation needs
//! goodput, energy per bit and per-packet delay, never payload contents.

use bcp_net::addr::NodeId;
use bcp_sim::time::SimTime;
use core::fmt;

/// Globally unique identity of one application packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// One buffered application packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppPacket {
    /// Unique id (origin-scoped counter folded with the origin).
    pub id: PacketId,
    /// The node that generated the packet.
    pub origin: NodeId,
    /// Final destination (the sink in the paper's workloads).
    pub dest: NodeId,
    /// Generation time — delay is measured from here (Section 4: "the
    /// difference in time a packet is generated at the sender and received
    /// by the sink, including buffering delays").
    pub created: SimTime,
    /// Payload size in bytes (32 in the paper).
    pub bytes: usize,
}

impl AppPacket {
    /// Creates a packet; `seq` must be unique at `origin`.
    pub fn new(origin: NodeId, dest: NodeId, seq: u64, created: SimTime, bytes: usize) -> Self {
        AppPacket {
            id: PacketId(((origin.0 as u64) << 40) | (seq & 0xff_ffff_ffff)),
            origin,
            dest,
            created,
            bytes,
        }
    }
}

/// Identity of one wake-up handshake / burst exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BurstId(pub u64);

impl BurstId {
    /// Builds a burst id unique across nodes: the initiating node's id is
    /// folded into the high bits.
    pub fn new(initiator: NodeId, counter: u64) -> Self {
        BurstId(((initiator.0 as u64) << 40) | (counter & 0xff_ffff_ffff))
    }

    /// The node that initiated the handshake.
    pub fn initiator(self) -> NodeId {
        NodeId((self.0 >> 40) as u32)
    }
}

impl fmt::Display for BurstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "burst[{}#{}]", self.initiator(), self.0 & 0xff_ffff_ffff)
    }
}

/// Control messages of the wake-up handshake (carried by the *low* radio).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeMsg {
    /// "A wake-up handshake is initiated by sending a wake-up message
    /// through the low-power radio. The wake-up message ... contains the
    /// burst size."
    WakeUp {
        /// Handshake identity.
        burst: BurstId,
        /// Buffered bytes the sender wants to move.
        burst_bytes: usize,
    },
    /// "On reception of a wake-up message, the receiver wakes up its
    /// high-power radio and sends back a wake-up ack specifying the amount
    /// of data the sender can transmit."
    WakeUpAck {
        /// Handshake identity (echoed).
        burst: BurstId,
        /// Bytes the receiver permits (≤ requested when short on buffer).
        granted_bytes: usize,
    },
}

impl HandshakeMsg {
    /// On-air payload size of this control message over the low radio, in
    /// bytes (id 8 + burst id 8 + length 4).
    pub const WIRE_BYTES: usize = 20;

    /// The handshake this message belongs to.
    pub fn burst(&self) -> BurstId {
        match self {
            HandshakeMsg::WakeUp { burst, .. } | HandshakeMsg::WakeUpAck { burst, .. } => *burst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_ids_unique_per_origin_seq() {
        let a = AppPacket::new(NodeId(1), NodeId(0), 0, SimTime::ZERO, 32);
        let b = AppPacket::new(NodeId(1), NodeId(0), 1, SimTime::ZERO, 32);
        let c = AppPacket::new(NodeId(2), NodeId(0), 0, SimTime::ZERO, 32);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn burst_id_roundtrips_initiator() {
        let b = BurstId::new(NodeId(17), 12345);
        assert_eq!(b.initiator(), NodeId(17));
        assert_eq!(b.to_string(), "burst[n17#12345]");
    }

    #[test]
    fn handshake_burst_accessor() {
        let b = BurstId::new(NodeId(3), 9);
        let w = HandshakeMsg::WakeUp {
            burst: b,
            burst_bytes: 16_000,
        };
        let a = HandshakeMsg::WakeUpAck {
            burst: b,
            granted_bytes: 8_000,
        };
        assert_eq!(w.burst(), b);
        assert_eq!(a.burst(), b);
    }
}
