//! The BCP receiver: wake on request, grant what fits, close early.
//!
//! Section 3, receiver side: "On reception of a wake-up message, the
//! receiver wakes up its high-power radio and sends back a wake-up ack
//! specifying the amount of data the sender can transmit. If the receiver
//! does not have enough space, the ack message returns a lower burst size.
//! If the receiver's buffer is full, no ack is sent. ... the receiver times
//! out and turns its high-power radio off if it does not receive any data
//! packets. ... the receiver turns off its high-power radio when it
//! receives the total number of packets advertised or after a timeout."

use crate::config::BcpConfig;
use crate::frag::Reassembly;
use crate::msg::{AppPacket, BurstId};
use bcp_net::addr::NodeId;
use bcp_sim::time::SimTime;

/// Effects requested by the receiver machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverAction {
    /// Acquire (power up) the high radio for this inbound session.
    WakeHighRadio {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Send the wake-up ack back over the low radio.
    SendWakeUpAck {
        /// The handshake initiator.
        to: NodeId,
        /// Handshake identity (echoed).
        burst: BurstId,
        /// Bytes granted (≤ requested).
        granted_bytes: usize,
    },
    /// Arm the data-arrival timeout.
    ArmDataTimer {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Cancel the data-arrival timeout.
    CancelDataTimer {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Release (allow powering down) the high radio.
    ReleaseHighRadio {
        /// Handshake identity.
        burst: BurstId,
    },
    /// Hand reassembled application packets to the routing layer.
    DeliverPackets {
        /// The burst's sender.
        from: NodeId,
        /// The packets, in original order.
        packets: Vec<AppPacket>,
    },
}

/// Receiver behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Wake-ups accepted (session opened).
    pub sessions_opened: u64,
    /// Wake-ups refused because no buffer space was available.
    pub wakeups_refused: u64,
    /// Duplicate wake-ups re-acked.
    pub wakeups_reacked: u64,
    /// Sessions that completed (all advertised frames received).
    pub sessions_completed: u64,
    /// Sessions closed by the data timeout.
    pub sessions_timed_out: u64,
    /// Packets delivered up.
    pub packets_delivered: u64,
    /// Bytes delivered up.
    pub bytes_delivered: u64,
}

#[derive(Debug, Clone)]
struct RecvSession {
    from: NodeId,
    burst: BurstId,
    granted: usize,
    reassembly: Option<Reassembly>,
}

/// Exact mutable state of a [`BcpReceiver`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverSnapshot {
    /// Open inbound sessions in arrival order.
    pub sessions: Vec<RecvSessionSnapshot>,
    /// Behaviour counters.
    pub stats: ReceiverStats,
}

/// Captured form of one open inbound session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvSessionSnapshot {
    /// The sender of the burst.
    pub from: NodeId,
    /// Handshake identity.
    pub burst: BurstId,
    /// Bytes granted in the wake-up ACK.
    pub granted: usize,
    /// Reassembly registers `(seen, packets_received, bytes_received)`,
    /// present once the first burst frame arrived.
    pub reassembly: Option<(Vec<bool>, u64, usize)>,
}

/// The per-node BCP receiver machine.
#[derive(Debug, Clone)]
pub struct BcpReceiver {
    node: NodeId,
    cfg: BcpConfig,
    sessions: Vec<RecvSession>,
    stats: ReceiverStats,
}

impl BcpReceiver {
    /// Creates the receiver machine for `node`.
    pub fn new(node: NodeId, cfg: BcpConfig) -> Self {
        cfg.validate();
        BcpReceiver {
            node,
            cfg,
            sessions: Vec::new(),
            stats: ReceiverStats::default(),
        }
    }

    /// The node this machine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Behaviour counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Number of inbound sessions currently open.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Captures the complete mutable state for checkpointing. Reassembly
    /// progress is flattened to its raw registers; session order (arrival
    /// order) is preserved.
    pub fn snapshot_state(&self) -> ReceiverSnapshot {
        ReceiverSnapshot {
            sessions: self
                .sessions
                .iter()
                .map(|s| RecvSessionSnapshot {
                    from: s.from,
                    burst: s.burst,
                    granted: s.granted,
                    reassembly: s.reassembly.as_ref().map(|r| {
                        let (_, seen, packets, bytes) = r.raw_parts();
                        (seen, packets, bytes)
                    }),
                })
                .collect(),
            stats: self.stats,
        }
    }

    /// Overwrites the mutable state with a captured [`ReceiverSnapshot`].
    /// The receiver must have been built with the same config.
    pub fn restore_state(&mut self, s: &ReceiverSnapshot) {
        self.sessions = s
            .sessions
            .iter()
            .map(|sess| RecvSession {
                from: sess.from,
                burst: sess.burst,
                granted: sess.granted,
                reassembly: sess.reassembly.as_ref().map(|(seen, packets, bytes)| {
                    Reassembly::from_raw_parts(sess.burst, seen.clone(), *packets, *bytes)
                }),
            })
            .collect();
        self.stats = s.stats;
    }

    /// A wake-up message arrived. `free_bytes` is the space this node can
    /// commit (its forwarding buffer headroom; effectively unbounded at the
    /// sink).
    pub fn on_wakeup(
        &mut self,
        _now: SimTime,
        from: NodeId,
        burst: BurstId,
        requested: usize,
        free_bytes: usize,
        out: &mut Vec<ReceiverAction>,
    ) {
        if let Some(sess) = self.sessions.iter().find(|s| s.burst == burst) {
            // Retransmitted wake-up (our ack was lost): re-ack idempotently.
            self.stats.wakeups_reacked += 1;
            out.push(ReceiverAction::SendWakeUpAck {
                to: sess.from,
                burst,
                granted_bytes: sess.granted,
            });
            if sess.reassembly.is_none() {
                out.push(ReceiverAction::ArmDataTimer { burst });
            }
            return;
        }
        let granted = requested.min(free_bytes);
        if granted == 0 {
            // "If the receiver's buffer is full, no ack is sent."
            self.stats.wakeups_refused += 1;
            return;
        }
        self.stats.sessions_opened += 1;
        self.sessions.push(RecvSession {
            from,
            burst,
            granted,
            reassembly: None,
        });
        out.push(ReceiverAction::WakeHighRadio { burst });
        out.push(ReceiverAction::SendWakeUpAck {
            to: from,
            burst,
            granted_bytes: granted,
        });
        out.push(ReceiverAction::ArmDataTimer { burst });
    }

    /// A burst frame arrived over the high radio.
    pub fn on_burst_frame(
        &mut self,
        _now: SimTime,
        burst: BurstId,
        index: u32,
        count: u32,
        packets: Vec<AppPacket>,
        out: &mut Vec<ReceiverAction>,
    ) {
        let Some(pos) = self.sessions.iter().position(|s| s.burst == burst) else {
            return; // session already closed (late frame)
        };
        let sess = &mut self.sessions[pos];
        let reassembly = sess
            .reassembly
            .get_or_insert_with(|| Reassembly::new(burst, count));
        let fresh = reassembly.record_frame(index, &packets);
        if fresh {
            self.stats.packets_delivered += packets.len() as u64;
            self.stats.bytes_delivered += packets.iter().map(|p| p.bytes as u64).sum::<u64>();
            out.push(ReceiverAction::DeliverPackets {
                from: sess.from,
                packets,
            });
        }
        if reassembly.is_complete() {
            self.stats.sessions_completed += 1;
            out.push(ReceiverAction::CancelDataTimer { burst });
            out.push(ReceiverAction::ReleaseHighRadio { burst });
            self.sessions.remove(pos);
        } else {
            // More frames expected: give the sender a fresh window.
            out.push(ReceiverAction::ArmDataTimer { burst });
        }
    }

    /// The data-arrival timer fired: close the session and the radio.
    pub fn on_data_timeout(
        &mut self,
        _now: SimTime,
        burst: BurstId,
        out: &mut Vec<ReceiverAction>,
    ) {
        let Some(pos) = self.sessions.iter().position(|s| s.burst == burst) else {
            return;
        };
        self.stats.sessions_timed_out += 1;
        out.push(ReceiverAction::ReleaseHighRadio { burst });
        self.sessions.remove(pos);
    }

    /// The configured receiver patience (the binder schedules this delay
    /// for [`ReceiverAction::ArmDataTimer`]).
    pub fn data_timeout(&self) -> bcp_sim::time::SimDuration {
        self.cfg.receiver_data_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BcpConfig;

    fn rx() -> BcpReceiver {
        BcpReceiver::new(NodeId(0), BcpConfig::paper_defaults())
    }

    fn pkt(seq: u64) -> AppPacket {
        AppPacket::new(NodeId(5), NodeId(0), seq, SimTime::ZERO, 32)
    }

    fn burst() -> BurstId {
        BurstId::new(NodeId(5), 0)
    }

    #[test]
    fn wakeup_opens_session_and_acks() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 16_000, 1 << 20, &mut out);
        assert_eq!(
            out,
            vec![
                ReceiverAction::WakeHighRadio { burst: burst() },
                ReceiverAction::SendWakeUpAck {
                    to: NodeId(5),
                    burst: burst(),
                    granted_bytes: 16_000,
                },
                ReceiverAction::ArmDataTimer { burst: burst() },
            ]
        );
        assert_eq!(r.open_sessions(), 1);
    }

    #[test]
    fn short_buffer_grants_less() {
        // "If the receiver does not have enough space, the ack message
        // returns a lower burst size."
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 16_000, 4_000, &mut out);
        assert!(out.contains(&ReceiverAction::SendWakeUpAck {
            to: NodeId(5),
            burst: burst(),
            granted_bytes: 4_000,
        }));
    }

    #[test]
    fn full_buffer_sends_no_ack() {
        // "If the receiver's buffer is full, no ack is sent."
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 16_000, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(r.open_sessions(), 0);
        assert_eq!(r.stats().wakeups_refused, 1);
    }

    #[test]
    fn duplicate_wakeup_reacks_same_grant() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 16_000, 8_000, &mut out);
        out.clear();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 16_000, 999, &mut out);
        // Grant is sticky (committed space), not re-derived.
        assert!(out.contains(&ReceiverAction::SendWakeUpAck {
            to: NodeId(5),
            burst: burst(),
            granted_bytes: 8_000,
        }));
        assert_eq!(r.stats().wakeups_reacked, 1);
        assert_eq!(r.open_sessions(), 1, "no second session");
    }

    #[test]
    fn frames_deliver_and_complete_closes_radio() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 128, 1 << 20, &mut out);
        out.clear();
        r.on_burst_frame(SimTime::ZERO, burst(), 0, 2, vec![pkt(0), pkt(1)], &mut out);
        assert!(matches!(
            &out[0],
            ReceiverAction::DeliverPackets { from, packets } if *from == NodeId(5) && packets.len() == 2
        ));
        assert!(
            out.contains(&ReceiverAction::ArmDataTimer { burst: burst() }),
            "window rearmed mid-burst"
        );
        out.clear();
        r.on_burst_frame(SimTime::ZERO, burst(), 1, 2, vec![pkt(2)], &mut out);
        assert!(out.contains(&ReceiverAction::CancelDataTimer { burst: burst() }));
        assert!(
            out.contains(&ReceiverAction::ReleaseHighRadio { burst: burst() }),
            "early close once everything advertised arrived"
        );
        assert_eq!(r.open_sessions(), 0);
        assert_eq!(r.stats().sessions_completed, 1);
        assert_eq!(r.stats().packets_delivered, 3);
    }

    #[test]
    fn data_timeout_closes_radio() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 128, 1 << 20, &mut out);
        out.clear();
        r.on_data_timeout(SimTime::from_secs(2), burst(), &mut out);
        assert_eq!(
            out,
            vec![ReceiverAction::ReleaseHighRadio { burst: burst() }]
        );
        assert_eq!(r.stats().sessions_timed_out, 1);
        assert_eq!(r.open_sessions(), 0);
    }

    #[test]
    fn late_frame_after_close_is_ignored() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 128, 1 << 20, &mut out);
        r.on_data_timeout(SimTime::from_secs(2), burst(), &mut out);
        out.clear();
        r.on_burst_frame(SimTime::from_secs(3), burst(), 0, 1, vec![pkt(0)], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_frame_not_redelivered() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_wakeup(SimTime::ZERO, NodeId(5), burst(), 128, 1 << 20, &mut out);
        out.clear();
        r.on_burst_frame(SimTime::ZERO, burst(), 0, 2, vec![pkt(0)], &mut out);
        out.clear();
        r.on_burst_frame(SimTime::ZERO, burst(), 0, 2, vec![pkt(0)], &mut out);
        assert!(
            !out.iter()
                .any(|a| matches!(a, ReceiverAction::DeliverPackets { .. })),
            "duplicate frame suppressed"
        );
    }

    #[test]
    fn concurrent_sessions_from_different_senders() {
        let mut r = rx();
        let mut out = Vec::new();
        let b1 = BurstId::new(NodeId(5), 0);
        let b2 = BurstId::new(NodeId(6), 0);
        r.on_wakeup(SimTime::ZERO, NodeId(5), b1, 128, 1 << 20, &mut out);
        r.on_wakeup(SimTime::ZERO, NodeId(6), b2, 128, 1 << 20, &mut out);
        assert_eq!(r.open_sessions(), 2);
        out.clear();
        r.on_burst_frame(SimTime::ZERO, b1, 0, 1, vec![pkt(0)], &mut out);
        assert_eq!(r.open_sessions(), 1, "only b1 closed");
    }
}
